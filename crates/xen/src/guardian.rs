//! The Guardian trait — the seam between service provisioning and
//! critical-resource management — and the vanilla (unprotected)
//! implementation.

use crate::domain::{Domain, DomainId};
use crate::grants::{GrantEntry, GRANT_ENTRY_SIZE, GRANT_TABLE_ENTRIES};
use crate::layout::{direct_map, InstrSites};
use crate::platform::Platform;
use fidelius_hw::cpu::PrivOp;
use fidelius_hw::{Fault, Hpa, HwError};
use fidelius_sev::SevError;
use std::any::Any;
use std::error::Error;
use std::fmt;

/// Why a guardian refused (or failed to perform) an operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GuardError {
    /// A protection policy rejected the operation.
    Policy(&'static str),
    /// The underlying access faulted.
    Fault(Fault),
    /// A hardware error occurred.
    Hw(HwError),
    /// A SEV firmware command failed.
    Sev(SevError),
    /// Integrity verification failed (e.g. tampered VMCB before VMRUN).
    IntegrityViolation(&'static str),
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Policy(why) => write!(f, "policy violation: {why}"),
            GuardError::Fault(e) => write!(f, "fault: {e}"),
            GuardError::Hw(e) => write!(f, "hardware error: {e}"),
            GuardError::Sev(e) => write!(f, "sev error: {e}"),
            GuardError::IntegrityViolation(why) => write!(f, "integrity violation: {why}"),
        }
    }
}

impl Error for GuardError {}

impl From<Fault> for GuardError {
    fn from(e: Fault) -> Self {
        GuardError::Fault(e)
    }
}

impl From<HwError> for GuardError {
    fn from(e: HwError) -> Self {
        GuardError::Hw(e)
    }
}

impl From<SevError> for GuardError {
    fn from(e: SevError) -> Self {
        GuardError::Sev(e)
    }
}

impl From<GuardError> for HwError {
    fn from(e: GuardError) -> Self {
        match e {
            GuardError::Fault(f) => HwError::Fault(f),
            GuardError::Hw(h) => h,
            GuardError::Policy(why) | GuardError::IntegrityViolation(why) => HwError::Denied(why),
            GuardError::Sev(_) => HwError::Denied("sev command refused"),
        }
    }
}

/// Direction of a PV I/O data transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Guest's private buffer → shared I/O buffer (disk write path).
    GuestToShared,
    /// Shared I/O buffer → guest's private buffer (disk read path).
    SharedToGuest,
}

/// What the hypervisor tells the guardian at late launch.
#[derive(Debug, Clone)]
pub struct LateLaunchInfo {
    /// Root of the host page tables.
    pub host_pt_root: Hpa,
    /// Physical base of the (one-page) grant table.
    pub grant_table_pa: Hpa,
    /// Instruction sites in the hypervisor's code image.
    pub xen_sites: InstrSites,
    /// Instruction sites in the Fidelius code image.
    pub fidelius_sites: InstrSites,
    /// Hypervisor code image (pa, pages).
    pub xen_code: (Hpa, u64),
    /// Fidelius code image (pa, pages).
    pub fidelius_code: (Hpa, u64),
}

/// The separation seam between resource management and service provision.
///
/// Every route by which the hypervisor touches a critical resource funnels
/// through one of these methods. [`Unprotected`] performs the operations
/// directly (vanilla Xen); `fidelius-core`'s implementation enforces the
/// paper's policies behind its gates. The trait is *not* the security
/// boundary — the memory system is; this is the *service interface* the
/// (possibly malicious) hypervisor is supposed to use, and attacks are free
/// to ignore it and hit the memory system directly.
pub trait Guardian {
    /// Short name for reports ("xen", "fidelius").
    fn name(&self) -> &'static str;

    /// One-time initialization after the hypervisor is set up (Fidelius's
    /// late launch, §4.3.1).
    ///
    /// # Errors
    ///
    /// Initialization failures are fatal for the protected configuration.
    fn late_launch(&mut self, plat: &mut Platform, info: &LateLaunchInfo)
        -> Result<(), GuardError>;

    /// Writes an 8-byte entry of a *host* page-table page.
    ///
    /// # Errors
    ///
    /// Policy violations and faults.
    fn host_pt_write(
        &mut self,
        plat: &mut Platform,
        entry_pa: Hpa,
        value: u64,
    ) -> Result<(), GuardError>;

    /// Writes an 8-byte entry of a domain's nested page table.
    ///
    /// # Errors
    ///
    /// Policy violations (PIT) and faults.
    fn npt_write(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        entry_pa: Hpa,
        value: u64,
    ) -> Result<(), GuardError>;

    /// Writes grant-table entry `index`.
    ///
    /// # Errors
    ///
    /// Policy violations (GIT) and faults.
    fn grant_write(
        &mut self,
        plat: &mut Platform,
        index: u64,
        entry: GrantEntry,
    ) -> Result<(), GuardError>;

    /// A guest registered its sharing intent (`pre_sharing_op`).
    ///
    /// # Errors
    ///
    /// Vanilla Xen reports `Policy("not supported")`.
    fn pre_sharing(
        &mut self,
        plat: &mut Platform,
        initiator: DomainId,
        target: DomainId,
        gpa_page: u64,
        nframes: u64,
        writable: bool,
    ) -> Result<(), GuardError>;

    /// The entry boundary: restore/verify guest state and execute VMRUN.
    ///
    /// # Errors
    ///
    /// Integrity violations (tampered VMCB) abort the entry.
    fn enter_guest(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError>;

    /// The exit boundary, called immediately after #VMEXIT.
    ///
    /// # Errors
    ///
    /// Faults while shadowing.
    fn on_vmexit(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError>;

    /// Executes a privileged instruction on the hypervisor's behalf.
    ///
    /// # Errors
    ///
    /// Policy violations (forbidden bit changes) and faults.
    fn exec_priv(&mut self, plat: &mut Platform, op: PrivOp) -> Result<(), GuardError>;

    /// The PV I/O data transform between a guest buffer and the shared
    /// I/O buffer (the paper's SEV-based I/O path runs here).
    ///
    /// # Errors
    ///
    /// Faults and SEV command failures.
    #[allow(clippy::too_many_arguments)]
    fn io_transform(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        dir: IoDir,
        src_pa: Hpa,
        dst_pa: Hpa,
        len: u64,
        stream: u64,
    ) -> Result<(), GuardError>;

    /// The PV I/O transform over a run of `sectors` contiguous sectors:
    /// sector `s` moves from `src_pa + 512·s` to `dst_pa + 512·s` with
    /// stream id `first_stream + s`. The default loops
    /// [`Guardian::io_transform`] per sector; guardians with batched
    /// crypto override it with a byte- and cycle-identical fast path.
    ///
    /// # Errors
    ///
    /// Faults and SEV command failures.
    #[allow(clippy::too_many_arguments)]
    fn io_transform_run(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        dir: IoDir,
        src_pa: Hpa,
        dst_pa: Hpa,
        sectors: u64,
        first_stream: u64,
    ) -> Result<(), GuardError> {
        let sz = fidelius_crypto::modes::SECTOR_SIZE as u64;
        for s in 0..sectors {
            self.io_transform(
                plat,
                dom,
                dir,
                Hpa(src_pa.0 + s * sz),
                Hpa(dst_pa.0 + s * sz),
                sz,
                first_stream + s,
            )?;
        }
        Ok(())
    }

    /// A domain was created (VMCB/NPT pages exist; frames may follow).
    ///
    /// # Errors
    ///
    /// Bookkeeping failures.
    fn on_domain_created(&mut self, plat: &mut Platform, dom: &Domain) -> Result<(), GuardError>;

    /// The guest finished booting: close the kernel-load write window
    /// (under Fidelius, the guest's private frames are unmapped from the
    /// hypervisor from here on — paper §4.3.4).
    ///
    /// # Errors
    ///
    /// Bookkeeping failures.
    fn seal_guest(&mut self, plat: &mut Platform, dom: &Domain) -> Result<(), GuardError>;

    /// Downcast support for implementation-specific flows (e.g. the
    /// Fidelius encrypted-boot lifecycle).
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// A domain is being destroyed; release its resources from tracking.
    ///
    /// # Errors
    ///
    /// Bookkeeping failures.
    fn on_domain_destroyed(&mut self, plat: &mut Platform, dom: DomainId)
        -> Result<(), GuardError>;
}

/// Vanilla Xen: no protection. Every operation is performed directly; the
/// hypervisor issues VMRUN itself and guest state crosses the boundary
/// unshadowed. This is the baseline configuration and the victim of most
/// attacks.
#[derive(Debug, Default)]
pub struct Unprotected {
    sites: Option<InstrSites>,
    grant_table_pa: Option<Hpa>,
}

impl Unprotected {
    /// A fresh unprotected guardian.
    pub fn new() -> Self {
        Unprotected::default()
    }

    fn sites(&self) -> &InstrSites {
        self.sites.as_ref().expect("late_launch must run first")
    }
}

impl Guardian for Unprotected {
    fn name(&self) -> &'static str {
        "xen"
    }

    fn late_launch(
        &mut self,
        _plat: &mut Platform,
        info: &LateLaunchInfo,
    ) -> Result<(), GuardError> {
        self.sites = Some(info.xen_sites);
        self.grant_table_pa = Some(info.grant_table_pa);
        Ok(())
    }

    fn host_pt_write(
        &mut self,
        plat: &mut Platform,
        entry_pa: Hpa,
        value: u64,
    ) -> Result<(), GuardError> {
        plat.machine.host_write_u64(direct_map(entry_pa), value)?;
        // The mapped VA is unknown from the raw entry address, so demote
        // every cached host translation (hit accounting unaffected).
        plat.machine.tlb.demote_space(fidelius_hw::tlb::Space::Host);
        Ok(())
    }

    fn npt_write(
        &mut self,
        plat: &mut Platform,
        _dom: DomainId,
        entry_pa: Hpa,
        value: u64,
    ) -> Result<(), GuardError> {
        plat.machine.host_write_u64(direct_map(entry_pa), value)?;
        Ok(())
    }

    fn grant_write(
        &mut self,
        plat: &mut Platform,
        index: u64,
        entry: GrantEntry,
    ) -> Result<(), GuardError> {
        assert!(index < GRANT_TABLE_ENTRIES, "grant index out of range");
        let base =
            self.grant_table_pa.expect("late_launch must run first").add(index * GRANT_ENTRY_SIZE);
        for (i, w) in entry.to_words().iter().enumerate() {
            plat.machine.host_write_u64(direct_map(base.add(8 * i as u64)), *w)?;
        }
        Ok(())
    }

    fn pre_sharing(
        &mut self,
        _plat: &mut Platform,
        _initiator: DomainId,
        _target: DomainId,
        _gpa_page: u64,
        _nframes: u64,
        _writable: bool,
    ) -> Result<(), GuardError> {
        Err(GuardError::Policy("pre_sharing_op is a Fidelius extension"))
    }

    fn enter_guest(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError> {
        // Vanilla Xen restores the guest GPRs from its own save area and
        // VMRUNs from its own code.
        plat.machine.cpu.regs.load_array(dom.gpr_save);
        plat.machine.cpu.rip = dom.rip;
        let site = self.sites().vmrun;
        plat.machine.exec_priv(site, PrivOp::Vmrun(dom.vmcb_pa))?;
        Ok(())
    }

    fn on_vmexit(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError> {
        // Save the guest's GPRs in plain hypervisor memory — SEV's leak.
        dom.gpr_save = plat.machine.cpu.regs.as_array();
        Ok(())
    }

    fn exec_priv(&mut self, plat: &mut Platform, op: PrivOp) -> Result<(), GuardError> {
        let site = match op {
            PrivOp::WriteCr0(_) => self.sites().write_cr0,
            PrivOp::WriteCr3(_) => self.sites().write_cr3,
            PrivOp::WriteCr4(_) => self.sites().write_cr4,
            PrivOp::WriteEfer(_) => self.sites().wrmsr,
            PrivOp::Vmrun(_) => self.sites().vmrun,
            PrivOp::Invlpg(_) => self.sites().invlpg,
            PrivOp::Lgdt(_) => self.sites().lgdt,
            PrivOp::Lidt(_) => self.sites().lidt,
            PrivOp::Cli => self.sites().cli,
            PrivOp::Sti => self.sites().sti,
        };
        plat.machine.exec_priv(site, op)?;
        Ok(())
    }

    fn io_transform(
        &mut self,
        plat: &mut Platform,
        _dom: DomainId,
        _dir: IoDir,
        src_pa: Hpa,
        dst_pa: Hpa,
        len: u64,
        _stream: u64,
    ) -> Result<(), GuardError> {
        // No protection: plain copy between the buffers.
        let mut buf = vec![0u8; len as usize];
        plat.machine.host_read(direct_map(src_pa), &mut buf)?;
        plat.machine.host_write(direct_map(dst_pa), &buf)?;
        Ok(())
    }

    fn on_domain_created(&mut self, _plat: &mut Platform, _dom: &Domain) -> Result<(), GuardError> {
        Ok(())
    }

    fn seal_guest(&mut self, _plat: &mut Platform, _dom: &Domain) -> Result<(), GuardError> {
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_domain_destroyed(
        &mut self,
        _plat: &mut Platform,
        _dom: DomainId,
    ) -> Result<(), GuardError> {
        Ok(())
    }
}
