//! Host virtual-memory layout and the hypervisor "code image".
//!
//! The hypervisor's code is a real byte blob in simulated memory: NOP
//! sled with the privileged instructions' opcode bytes planted at known
//! sites. Fidelius's binary scanner scans these actual bytes, and the CPU
//! verifies them at execution time, so "the instruction exists only in
//! Fidelius's code" is a checkable property of memory contents.

use fidelius_hw::{Hva, PAGE_SIZE};

/// Base of the hypervisor code region (host virtual).
pub const XEN_CODE_BASE: Hva = Hva(0x4000_0000);
/// Pages of hypervisor code.
pub const XEN_CODE_PAGES: u64 = 16;
/// Base of the hypervisor data region (heap) — host virtual.
pub const XEN_DATA_BASE: Hva = Hva(0x4800_0000);
/// Pages of hypervisor data.
pub const XEN_DATA_PAGES: u64 = 64;
/// Base of the direct map: host virtual `DIRECT_MAP_BASE + pa` ↦ `pa`.
pub const DIRECT_MAP_BASE: Hva = Hva(0x100_0000_0000);

/// Base of the Fidelius code region.
pub const FIDELIUS_CODE_BASE: Hva = Hva(0x6000_0000);
/// Pages of Fidelius code.
pub const FIDELIUS_CODE_PAGES: u64 = 8;
/// Base of Fidelius private data (shadow states, SEV metadata) — unmapped
/// from the hypervisor's address space.
pub const FIDELIUS_DATA_BASE: Hva = Hva(0x6800_0000);
/// Pages of Fidelius private data.
pub const FIDELIUS_DATA_PAGES: u64 = 64;

/// Translates a physical address through the direct map.
pub fn direct_map(pa: fidelius_hw::Hpa) -> Hva {
    Hva(DIRECT_MAP_BASE.0 + pa.0)
}

/// Where each privileged instruction's bytes live inside a code region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrSites {
    /// `mov cr0, reg`.
    pub write_cr0: Hva,
    /// `mov cr3, reg`.
    pub write_cr3: Hva,
    /// `mov cr4, reg`.
    pub write_cr4: Hva,
    /// `wrmsr`.
    pub wrmsr: Hva,
    /// `vmrun`.
    pub vmrun: Hva,
    /// `invlpg`.
    pub invlpg: Hva,
    /// `lgdt`.
    pub lgdt: Hva,
    /// `lidt`.
    pub lidt: Hva,
    /// `cli`.
    pub cli: Hva,
    /// `sti`.
    pub sti: Hva,
}

/// Offsets (within a code region) where [`build_code_image`] plants each
/// instruction.
pub const OFF_WRITE_CR0: u64 = 0x100;
/// Offset of `mov cr4`.
pub const OFF_WRITE_CR4: u64 = 0x120;
/// Offset of `wrmsr`.
pub const OFF_WRMSR: u64 = 0x140;
/// Offset of `invlpg`.
pub const OFF_INVLPG: u64 = 0x160;
/// Offset of `lgdt`.
pub const OFF_LGDT: u64 = 0x180;
/// Offset of `lidt`.
pub const OFF_LIDT: u64 = 0x1A0;
/// Offset of `cli`.
pub const OFF_CLI: u64 = 0x1C0;
/// Offset of `sti`.
pub const OFF_STI: u64 = 0x1D0;
/// Offset of `vmrun` — on its own page so it can be unmapped separately.
pub const OFF_VMRUN: u64 = 2 * PAGE_SIZE + 0x10;
/// Offset of `mov cr3` — placed in the last bytes of its page, per the
/// paper's §4.1.2 trick: the instruction's page is normally unmapped, and
/// the *following* page (holding the subsequent instructions) stays mapped
/// in all address spaces so execution can continue after the switch.
pub const OFF_WRITE_CR3: u64 = 4 * PAGE_SIZE - 3;

/// Builds a code image of `pages` pages: a NOP sled with the privileged
/// instructions' encodings planted at the `OFF_*` offsets, and returns the
/// site table for a region based at `base`.
///
/// # Panics
///
/// Panics if `pages` is too small to hold all sites (needs ≥ 5 pages).
pub fn build_code_image(base: Hva, pages: u64) -> (Vec<u8>, InstrSites) {
    assert!(pages >= 5, "code image needs at least 5 pages");
    let mut code = vec![0x90u8; (pages * PAGE_SIZE) as usize];
    let mut plant = |off: u64, bytes: &[u8]| {
        code[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
    };
    plant(OFF_WRITE_CR0, &[0x0F, 0x22, 0xC0]);
    plant(OFF_WRITE_CR4, &[0x0F, 0x22, 0xE0]);
    plant(OFF_WRMSR, &[0x0F, 0x30]);
    plant(OFF_INVLPG, &[0x0F, 0x01, 0x38]);
    plant(OFF_LGDT, &[0x0F, 0x01, 0x10]);
    plant(OFF_LIDT, &[0x0F, 0x01, 0x18]);
    plant(OFF_CLI, &[0xFA]);
    plant(OFF_STI, &[0xFB]);
    plant(OFF_VMRUN, &[0x0F, 0x01, 0xD8]);
    plant(OFF_WRITE_CR3, &[0x0F, 0x22, 0xD8]);
    let site = |off: u64| base.add(off);
    let sites = InstrSites {
        write_cr0: site(OFF_WRITE_CR0),
        write_cr3: site(OFF_WRITE_CR3),
        write_cr4: site(OFF_WRITE_CR4),
        wrmsr: site(OFF_WRMSR),
        vmrun: site(OFF_VMRUN),
        invlpg: site(OFF_INVLPG),
        lgdt: site(OFF_LGDT),
        lidt: site(OFF_LIDT),
        cli: site(OFF_CLI),
        sti: site(OFF_STI),
    };
    (code, sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_has_instructions_at_sites() {
        let (code, sites) = build_code_image(XEN_CODE_BASE, XEN_CODE_PAGES);
        assert_eq!(code.len() as u64, XEN_CODE_PAGES * PAGE_SIZE);
        let off = (sites.vmrun.0 - XEN_CODE_BASE.0) as usize;
        assert_eq!(&code[off..off + 3], &[0x0F, 0x01, 0xD8]);
        let off = (sites.write_cr3.0 - XEN_CODE_BASE.0) as usize;
        assert_eq!(&code[off..off + 3], &[0x0F, 0x22, 0xD8]);
        // mov cr3 straddles the end of its page.
        assert_eq!((sites.write_cr3.0 + 3) % PAGE_SIZE, 0);
    }

    #[test]
    fn vmrun_and_cr3_on_distinct_pages_from_common_code() {
        let (_, sites) = build_code_image(XEN_CODE_BASE, XEN_CODE_PAGES);
        assert_ne!(sites.vmrun.pfn(), sites.write_cr0.pfn());
        assert_ne!(sites.write_cr3.pfn(), sites.write_cr0.pfn());
        assert_ne!(sites.vmrun.pfn(), sites.write_cr3.pfn());
    }

    #[test]
    #[should_panic(expected = "at least 5 pages")]
    fn too_small_image_panics() {
        build_code_image(XEN_CODE_BASE, 2);
    }
}
