//! XenStore: the hierarchical configuration store guests and dom0 use to
//! rendezvous (paper §2.3: "the other end of the guest VM takes the grant
//! reference from the XenStore").
//!
//! Modeled as a path → value map with owner-or-dom0 write permission.
//! The store is *hypervisor-maintained and untrusted*: nothing
//! confidential may live here, and Fidelius's GIT checks are what make a
//! tampered grant reference harmless (mapping a wrong reference simply
//! fails its policy check).

use crate::domain::DomainId;
use std::collections::BTreeMap;

/// The store.
#[derive(Debug, Default)]
pub struct XenStore {
    entries: BTreeMap<String, (DomainId, String)>,
}

impl XenStore {
    /// An empty store.
    pub fn new() -> Self {
        XenStore::default()
    }

    /// Writes `path` = `value` on behalf of `who`. Creation claims the
    /// path; overwriting requires being the owner or dom0. Returns whether
    /// the write was accepted.
    pub fn write(&mut self, who: DomainId, path: &str, value: &str) -> bool {
        match self.entries.get(path) {
            Some((owner, _)) if *owner != who && who != DomainId::DOM0 => false,
            _ => {
                let owner = self.entries.get(path).map(|(o, _)| *o).unwrap_or(who);
                self.entries.insert(path.to_string(), (owner, value.to_string()));
                true
            }
        }
    }

    /// Reads a value (the store is world-readable, like real XenStore's
    /// common configuration paths).
    pub fn read(&self, path: &str) -> Option<&str> {
        self.entries.get(path).map(|(_, v)| v.as_str())
    }

    /// Lists paths under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.entries
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Removes everything a domain owns (teardown).
    pub fn remove_domain(&mut self, dom: DomainId) {
        self.entries.retain(|_, (owner, _)| *owner != dom);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut xs = XenStore::new();
        assert!(xs.write(DomainId(1), "/local/domain/1/device/vbd/ring-ref", "3"));
        assert_eq!(xs.read("/local/domain/1/device/vbd/ring-ref"), Some("3"));
        assert_eq!(xs.read("/nope"), None);
    }

    #[test]
    fn ownership_guards_overwrites() {
        let mut xs = XenStore::new();
        assert!(xs.write(DomainId(1), "/a", "mine"));
        assert!(!xs.write(DomainId(2), "/a", "stolen"), "other guests cannot overwrite");
        assert_eq!(xs.read("/a"), Some("mine"));
        assert!(xs.write(DomainId::DOM0, "/a", "admin"), "dom0 can");
        assert_eq!(xs.read("/a"), Some("admin"));
        // Ownership stays with the creator even after a dom0 write.
        assert!(xs.write(DomainId(1), "/a", "mine again"));
    }

    #[test]
    fn list_by_prefix() {
        let mut xs = XenStore::new();
        xs.write(DomainId(1), "/dev/vbd/0", "a");
        xs.write(DomainId(1), "/dev/vbd/1", "b");
        xs.write(DomainId(1), "/dev/vif/0", "c");
        assert_eq!(xs.list("/dev/vbd/").len(), 2);
        assert_eq!(xs.list("/dev/").len(), 3);
        assert_eq!(xs.list("/zzz").len(), 0);
    }

    #[test]
    fn remove_domain_clears_owned_paths() {
        let mut xs = XenStore::new();
        xs.write(DomainId(1), "/one", "1");
        xs.write(DomainId(2), "/two", "2");
        xs.remove_domain(DomainId(1));
        assert!(xs.read("/one").is_none());
        assert_eq!(xs.read("/two"), Some("2"));
        assert_eq!(xs.len(), 1);
    }
}
