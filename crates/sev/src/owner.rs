//! Guest-owner tooling: building encrypted kernel and disk images in a
//! trusted environment (paper §4.3.2 "VM preparing").
//!
//! The owner plays the role of a sending SEV firmware: it generates
//! transport keys, wraps them for the *target platform's* PDH, encrypts the
//! kernel image page by page in the transport format, and computes the
//! measurement `Mvm`. The resulting [`EncryptedImage`] can be handed to an
//! untrusted hypervisor wholesale: only the target firmware can unwrap the
//! keys, and `RECEIVE_FINISH` will catch any tampering.

use crate::firmware::{derive_session_kek, wrap_transport_keys, SessionBlob};
use fidelius_crypto::hmac::hmac_sha256;
use fidelius_crypto::modes::{Ctr128, SectorCipher, SECTOR_SIZE};
use fidelius_crypto::rng::Xoshiro256;
use fidelius_crypto::sha256::Sha256;
use fidelius_crypto::x25519::KeyPair;
use fidelius_crypto::Key128;
use fidelius_hw::PAGE_SIZE;

/// An encrypted, integrity-protected kernel image plus the session
/// parameters needed to boot it via the retrofitted RECEIVE flow.
#[derive(Debug, Clone)]
pub struct EncryptedImage {
    /// Transport-encrypted pages, in order.
    pub pages: Vec<Vec<u8>>,
    /// Wrapped transport keys + public ECDH metadata.
    pub session: SessionBlob,
    /// The measurement `Mvm` to pass to `RECEIVE_FINISH`.
    pub measurement: [u8; 32],
}

impl EncryptedImage {
    /// Image size in bytes.
    pub fn len(&self) -> usize {
        self.pages.len() * PAGE_SIZE as usize
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// The guest owner's trusted-environment identity and tooling.
pub struct GuestOwner {
    keypair: KeyPair,
    rng: Xoshiro256,
}

impl std::fmt::Debug for GuestOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestOwner").field("public", self.keypair.public()).finish()
    }
}

impl GuestOwner {
    /// Creates an owner identity from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed ^ 0xA110_4343u64);
        let keypair = KeyPair::from_seed(rng.next_bytes32());
        GuestOwner { keypair, rng }
    }

    /// The owner's public ECDH key (part of the SEV metadata given to
    /// Fidelius).
    pub fn public(&self) -> [u8; 32] {
        *self.keypair.public()
    }

    /// Packages `kernel` (padded to whole pages) into an encrypted image
    /// bootable only on the platform whose PDH is `target_pdh`.
    pub fn package_image(&mut self, kernel: &[u8], target_pdh: &[u8; 32]) -> EncryptedImage {
        let tek: Key128 = self.rng.next_key128();
        let tik: Key128 = self.rng.next_key128();
        let nonce = self.rng.next_bytes32();
        let shared = self.keypair.agree(target_pdh);
        let kek = derive_session_kek(&shared, &nonce);
        let wrapped_keys = wrap_transport_keys(&kek, &tek, &tik);

        let page = PAGE_SIZE as usize;
        let npages = kernel.len().div_ceil(page).max(1);
        let mut padded = kernel.to_vec();
        padded.resize(npages * page, 0);

        let mut hasher = Sha256::new();
        let ctr = Ctr128::new(&tek, 0x7EC0_0000_0000_0000);
        let mut pages = Vec::with_capacity(npages);
        for (idx, chunk) in padded.chunks(page).enumerate() {
            hasher.update(chunk);
            let mut ct = chunk.to_vec();
            ctr.apply(idx as u64 * (PAGE_SIZE / 16), &mut ct);
            pages.push(ct);
        }
        let measurement = hmac_sha256(&tik, &hasher.finalize());
        EncryptedImage {
            pages,
            session: SessionBlob { wrapped_keys, origin_pdh: self.public(), nonce },
            measurement,
        }
    }

    /// Generates a fresh disk-encryption key `Kblk` (to be embedded in the
    /// kernel image before packaging).
    pub fn generate_kblk(&mut self) -> Key128 {
        self.rng.next_key128()
    }

    /// Encrypts a raw disk image sector by sector under `kblk`. The input
    /// is padded to whole sectors.
    pub fn encrypt_disk_image(kblk: &Key128, plain: &[u8]) -> Vec<u8> {
        let nsectors = plain.len().div_ceil(SECTOR_SIZE).max(1);
        let mut padded = plain.to_vec();
        padded.resize(nsectors * SECTOR_SIZE, 0);
        let cipher = SectorCipher::new(kblk);
        for (i, sector) in padded.chunks_mut(SECTOR_SIZE).enumerate() {
            cipher.encrypt_sector(i as u64, sector);
        }
        padded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{Firmware, GuestPolicy};
    use fidelius_hw::cpu::Machine;
    use fidelius_hw::memctrl::EncSel;
    use fidelius_hw::{Asid, Hpa};

    #[test]
    fn owner_image_boots_through_receive_flow() {
        let mut machine = Machine::new(256 * PAGE_SIZE);
        let mut fw = Firmware::new(11);
        fw.init().unwrap();
        let mut owner = GuestOwner::new(22);

        let mut kernel = b"FIDELIUS-KERNEL v1 ".to_vec();
        kernel.extend_from_slice(&[0xC3; 5000]); // spans 2 pages
        let image = owner.package_image(&kernel, &fw.pdh_public());
        assert_eq!(image.pages.len(), 2);
        assert_eq!(image.len(), 2 * PAGE_SIZE as usize);
        // Ciphertext, not the kernel.
        assert_ne!(&image.pages[0][..19], &kernel[..19]);

        // Fidelius-side boot: RECEIVE the image into guest memory.
        let h = fw.receive_start(&image.session, GuestPolicy::default()).unwrap();
        let base = Hpa(0x2_0000);
        for (i, page) in image.pages.iter().enumerate() {
            fw.receive_update_page(&mut machine, h, page, i as u64, base.add(i as u64 * PAGE_SIZE))
                .unwrap();
        }
        fw.receive_finish(h, &image.measurement).unwrap();
        fw.activate(&mut machine, h, Asid(1)).unwrap();

        // The kernel is now readable through the guest key only.
        let mut head = [0u8; 19];
        machine.mc.read(base, &mut head, EncSel::Guest(Asid(1))).unwrap();
        assert_eq!(&head, b"FIDELIUS-KERNEL v1 ");
        let mut raw = [0u8; 19];
        machine.mc.dram().read_raw(base, &mut raw).unwrap();
        assert_ne!(&raw, b"FIDELIUS-KERNEL v1 ");
    }

    #[test]
    fn tampered_image_is_rejected() {
        let mut machine = Machine::new(64 * PAGE_SIZE);
        let mut fw = Firmware::new(12);
        fw.init().unwrap();
        let mut owner = GuestOwner::new(23);
        let mut image = owner.package_image(b"kernel", &fw.pdh_public());
        image.pages[0][7] ^= 1;
        let h = fw.receive_start(&image.session, GuestPolicy::default()).unwrap();
        fw.receive_update_page(&mut machine, h, &image.pages[0], 0, Hpa(0x8000)).unwrap();
        assert!(fw.receive_finish(h, &image.measurement).is_err());
    }

    #[test]
    fn image_for_other_platform_rejected() {
        let mut fw_a = Firmware::new(13);
        fw_a.init().unwrap();
        let mut fw_b = Firmware::new(14);
        fw_b.init().unwrap();
        let mut owner = GuestOwner::new(24);
        let image = owner.package_image(b"kernel", &fw_a.pdh_public());
        assert!(fw_b.receive_start(&image.session, GuestPolicy::default()).is_err());
    }

    #[test]
    fn disk_image_encryption_roundtrip() {
        let mut owner = GuestOwner::new(25);
        let kblk = owner.generate_kblk();
        let plain = b"filesystem-contents".repeat(40); // ~760B → 2 sectors
        let enc = GuestOwner::encrypt_disk_image(&kblk, &plain);
        assert_eq!(enc.len(), 2 * SECTOR_SIZE);
        assert_ne!(&enc[..19], &plain[..19]);
        // Decrypt with SectorCipher to verify format.
        let cipher = SectorCipher::new(&kblk);
        let mut dec = enc.clone();
        for (i, s) in dec.chunks_mut(SECTOR_SIZE).enumerate() {
            cipher.decrypt_sector(i as u64, s);
        }
        assert_eq!(&dec[..plain.len()], plain.as_slice());
    }

    #[test]
    fn empty_kernel_still_produces_one_page() {
        let mut owner = GuestOwner::new(26);
        let fw = Firmware::new(15);
        let image = owner.package_image(b"", &fw.pdh_public());
        assert_eq!(image.pages.len(), 1);
        assert!(!image.is_empty());
    }
}
