//! The SEV firmware command interface and its state machines.

use crate::error::SevError;
use fidelius_crypto::aes::Aes128;
use fidelius_crypto::hmac::{derive_key128, hmac_sha256, verify_hmac_sha256};
use fidelius_crypto::keywrap;
use fidelius_crypto::modes::{Ctr128, PaTweakCipher, SECTOR_SIZE};
use fidelius_crypto::rng::Xoshiro256;
use fidelius_crypto::sha256::Sha256;
use fidelius_crypto::x25519::KeyPair;
use fidelius_crypto::Key128;
use fidelius_hw::cpu::Machine;
use fidelius_hw::{Asid, Hpa, PAGE_SIZE};
use fidelius_trace::{ArgValue, SpanKind};
use std::collections::{HashMap, HashSet};

/// Platform-wide firmware state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformState {
    /// Before `INIT`.
    Uninitialized,
    /// After `INIT`: guest commands are accepted.
    Initialized,
}

/// Per-guest context state (a subset of the SEV spec's states, sufficient
/// for the paper's flows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestState {
    /// Between `LAUNCH_START` and `LAUNCH_FINISH`.
    Launching,
    /// Runnable.
    Running,
    /// Between `SEND_START` and `SEND_FINISH` (guest execution stopped —
    /// which is why the paper notes Fidelius cannot do *live* migration).
    Sending,
    /// Between `RECEIVE_START` and `RECEIVE_FINISH`.
    Receiving,
}

/// Which firmware build is running — the retrofitted one the paper
/// proposes, or the vanilla SEV firmware it improves on.
///
/// The attack matrix boots victims under both: the same command sequence
/// that the retrofit refuses with [`SevError::SessionNonceReplayed`]
/// (stale-measurement rollback) sails through vanilla firmware, which
/// keeps no anti-replay state at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FwMode {
    /// Paper firmware: session nonces are single-use. A nonce is
    /// *committed* only when its RECEIVE/LAUNCH completes successfully
    /// (`receive_finish`), so a transfer the hypervisor tampered with can
    /// be retried with the same session blob.
    #[default]
    Retrofit,
    /// Faithful vanilla SEV: no nonce bookkeeping, every well-formed
    /// session blob is accepted — including one captured from an earlier
    /// boot (the attestation-rollback attack).
    Vanilla,
}

/// Guest policy bits (simplified).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuestPolicy {
    /// Debugging the guest through firmware is forbidden.
    pub no_debug: bool,
    /// The guest's key may not be shared with another guest context.
    pub no_key_sharing: bool,
}

/// An opaque handle naming a guest context inside the firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u32);

/// The session parameters that travel with wrapped transport keys — the
/// paper's `Kwrap` plus the public ECDH metadata (origin public key and
/// nonce `Nvm`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionBlob {
    /// `Kwrap`: TEK‖TIK wrapped under the ECDH-derived KEK.
    pub wrapped_keys: Vec<u8>,
    /// The origin's public ECDH key (public).
    pub origin_pdh: [u8; 32],
    /// The session nonce (public).
    pub nonce: [u8; 32],
}

/// Handles for the paper's SEV-based I/O helper contexts (§4.3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoHelpers {
    /// The sending helper (encrypt: `Kvek` → `Ktek`).
    pub sdom: Handle,
    /// The receiving helper (decrypt: `Ktek` → `Kvek`).
    pub rdom: Handle,
}

#[derive(Clone)]
struct GuestContext {
    state: GuestState,
    policy: GuestPolicy,
    kvek: Key128,
    asid: Option<Asid>,
    tek: Option<Key128>,
    tik: Option<Key128>,
    measurement: Sha256,
    /// The session nonce this context was started from (retrofit only) —
    /// committed to the platform's consumed set at `receive_finish`.
    session_nonce: Option<[u8; 32]>,
}

impl GuestContext {
    fn new(kvek: Key128, policy: GuestPolicy, state: GuestState) -> Self {
        GuestContext {
            state,
            policy,
            kvek,
            asid: None,
            tek: None,
            tik: None,
            measurement: Sha256::new(),
            session_nonce: None,
        }
    }

    fn require(&self, expected: GuestState) -> Result<(), SevError> {
        if self.state == expected {
            Ok(())
        } else {
            Err(SevError::InvalidGuestState { expected, actual: self.state })
        }
    }
}

/// Derives the key-encryption key both endpoints of a session agree on.
///
/// Exposed so the guest-owner tooling ([`crate::owner`]) can run the same
/// derivation; the hypervisor observing `origin_pdh` and `nonce` cannot,
/// lacking either private key.
pub fn derive_session_kek(shared_secret: &[u8; 32], nonce: &[u8; 32]) -> Key128 {
    let mut ikm = Vec::with_capacity(64);
    ikm.extend_from_slice(shared_secret);
    ikm.extend_from_slice(nonce);
    derive_key128(&ikm, "sev-session-kek")
}

/// Wraps TEK‖TIK under the session KEK.
pub fn wrap_transport_keys(kek: &Key128, tek: &Key128, tik: &Key128) -> Vec<u8> {
    let mut keys = Vec::with_capacity(32);
    keys.extend_from_slice(tek);
    keys.extend_from_slice(tik);
    keywrap::wrap(kek, &keys).expect("32-byte wrap input is always valid")
}

fn unwrap_transport_keys(kek: &Key128, wrapped: &[u8]) -> Result<(Key128, Key128), SevError> {
    let keys = keywrap::unwrap(kek, wrapped).map_err(|_| SevError::BadSessionKeys)?;
    if keys.len() != 32 {
        return Err(SevError::BadSessionKeys);
    }
    let tek: Key128 = keys[..16].try_into().expect("length checked");
    let tik: Key128 = keys[16..].try_into().expect("length checked");
    Ok((tek, tik))
}

/// Expanded key schedules for one guest or I/O helper context, built once
/// per handle instead of once per page/sector. A handle's `Kvek` is fixed
/// at creation and handles are never reused, so the engine schedule can
/// never go stale; the transport schedule is cached once the context holds
/// a `Ktek` and the whole entry is dropped by `SEND_START`, the only
/// command that rotates transport keys on a live handle.
#[derive(Clone)]
struct IoCiphers {
    /// The guest's memory-encryption engine cipher (`Kvek`).
    engine: PaTweakCipher,
    /// The expanded I/O transport cipher (`Ktek`) when the context holds
    /// one; per-sector CTR contexts borrow this schedule via
    /// [`Ctr128::from_cipher`]. `None` for contexts without transport keys
    /// (e.g. `Launching` guests).
    tek: Option<Aes128>,
}

/// The SEV firmware. See the crate docs for the trust model.
pub struct Firmware {
    state: PlatformState,
    mode: FwMode,
    pdh: KeyPair,
    attest_key: Key128,
    guests: HashMap<Handle, GuestContext>,
    /// Session nonces consumed by a *successful* receive (retrofit only).
    seen_nonces: HashSet<[u8; 32]>,
    /// Per-helper expanded I/O key schedules (see [`IoCiphers`]).
    io_ciphers: HashMap<Handle, IoCiphers>,
    next_handle: u32,
    rng: Xoshiro256,
}

impl std::fmt::Debug for Firmware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Firmware")
            .field("state", &self.state)
            .field("guests", &self.guests.len())
            .finish()
    }
}

impl Firmware {
    /// Creates the retrofitted firmware with a fresh platform identity
    /// derived from `seed` (deterministic for reproducible simulations).
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, FwMode::Retrofit)
    }

    /// Creates vanilla SEV firmware: same commands, none of the paper's
    /// retrofit checks (see [`FwMode::Vanilla`]). Used by the attack
    /// matrix's undefended configurations.
    pub fn new_vanilla(seed: u64) -> Self {
        Self::with_mode(seed, FwMode::Vanilla)
    }

    /// Creates the firmware in an explicit [`FwMode`]. The platform
    /// identity depends only on `seed`, so a retrofit and a vanilla
    /// instance with the same seed share a PDH — useful for replaying the
    /// exact same owner-packaged image against both builds.
    pub fn with_mode(seed: u64, mode: FwMode) -> Self {
        let mut rng = Xoshiro256::new(seed ^ 0x5EF1_F1DE_11D5_0001);
        let pdh = KeyPair::from_seed(rng.next_bytes32());
        let attest_key = rng.next_key128();
        Firmware {
            state: PlatformState::Uninitialized,
            mode,
            pdh,
            attest_key,
            guests: HashMap::new(),
            seen_nonces: HashSet::new(),
            io_ciphers: HashMap::new(),
            next_handle: 1,
            rng,
        }
    }

    /// Which firmware build this is.
    pub fn mode(&self) -> FwMode {
        self.mode
    }

    /// `INIT`: brings the platform to the working state.
    ///
    /// # Errors
    ///
    /// Fails if already initialized.
    pub fn init(&mut self) -> Result<(), SevError> {
        if self.state != PlatformState::Uninitialized {
            return Err(SevError::InvalidPlatformState { actual: self.state });
        }
        self.state = PlatformState::Initialized;
        Ok(())
    }

    /// Current platform state.
    pub fn platform_state(&self) -> PlatformState {
        self.state
    }

    /// The platform Diffie-Hellman public key (PDH), used by guest owners
    /// to target this machine.
    pub fn pdh_public(&self) -> [u8; 32] {
        *self.pdh.public()
    }

    /// Attestation: tags `evidence` with the platform's attestation key.
    /// Stands in for the PSP's signed attestation reports — a verifier
    /// that trusts this platform (e.g. the guest owner, after key
    /// agreement) can check the tag with [`Firmware::verify_attestation`].
    pub fn attest(&self, evidence: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.attest_key, evidence)
    }

    /// Verifies an attestation tag produced by this platform.
    pub fn verify_attestation(&self, evidence: &[u8], tag: &[u8; 32]) -> bool {
        verify_hmac_sha256(&self.attest_key, evidence, tag)
    }

    fn require_init(&self) -> Result<(), SevError> {
        if self.state != PlatformState::Initialized {
            return Err(SevError::InvalidPlatformState { actual: self.state });
        }
        Ok(())
    }

    fn guest(&self, h: Handle) -> Result<&GuestContext, SevError> {
        self.guests.get(&h).ok_or(SevError::UnknownHandle(h.0))
    }

    fn guest_mut(&mut self, h: Handle) -> Result<&mut GuestContext, SevError> {
        self.guests.get_mut(&h).ok_or(SevError::UnknownHandle(h.0))
    }

    fn fresh_handle(&mut self) -> Handle {
        let h = Handle(self.next_handle);
        self.next_handle += 1;
        h
    }

    // ----- launch ---------------------------------------------------------

    /// `LAUNCH_START`: creates a guest context with a fresh `Kvek`.
    ///
    /// # Errors
    ///
    /// Requires an initialized platform.
    pub fn launch_start(&mut self, policy: GuestPolicy) -> Result<Handle, SevError> {
        self.require_init()?;
        let kvek = self.rng.next_key128();
        let h = self.fresh_handle();
        self.guests.insert(h, GuestContext::new(kvek, policy, GuestState::Launching));
        Ok(h)
    }

    /// `LAUNCH_UPDATE_DATA`: encrypts `len` bytes of plaintext already
    /// loaded at physical `pa` in place with the guest's `Kvek`, extending
    /// the launch measurement.
    ///
    /// # Errors
    ///
    /// Requires the `Launching` state; `pa`/`len` must be 16-byte aligned.
    pub fn launch_update_data(
        &mut self,
        machine: &mut Machine,
        h: Handle,
        pa: Hpa,
        len: u64,
    ) -> Result<(), SevError> {
        self.require_init()?;
        let ciphers = self.cached_ciphers(h, GuestState::Launching)?;
        assert_eq!(pa.0 % 16, 0, "launch data must be block aligned");
        assert_eq!(len % 16, 0, "launch data length must be block aligned");
        let mut buf = vec![0u8; len as usize];
        machine.mc.dram().read_raw(pa, &mut buf).map_err(SevError::Hw)?;
        self.guest_mut(h).expect("validated above").measurement.update(&buf);
        ciphers.engine.encrypt_blocks(pa.0, &mut buf);
        machine.mc.dram_mut().write_raw(pa, &buf).map_err(SevError::Hw)?;
        let lines = len.div_ceil(fidelius_hw::CACHE_LINE);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            lines as f64 * machine.cost.engine_line_extra,
        );
        Ok(())
    }

    /// `LAUNCH_MEASURE`: the measurement of everything launch-updated so
    /// far, keyed so the owner can verify it.
    ///
    /// # Errors
    ///
    /// Requires the `Launching` state.
    pub fn launch_measure(&self, h: Handle) -> Result<[u8; 32], SevError> {
        let ctx = self.guest(h)?;
        ctx.require(GuestState::Launching)?;
        let digest = ctx.measurement.clone().finalize();
        Ok(hmac_sha256(&ctx.kvek, &digest))
    }

    /// `LAUNCH_FINISH`: the guest becomes runnable.
    ///
    /// # Errors
    ///
    /// Requires the `Launching` state.
    pub fn launch_finish(&mut self, h: Handle) -> Result<(), SevError> {
        let ctx = self.guest_mut(h)?;
        ctx.require(GuestState::Launching)?;
        ctx.state = GuestState::Running;
        Ok(())
    }

    // ----- activation -----------------------------------------------------

    /// `ACTIVATE`: binds the guest to an ASID and installs its `Kvek` into
    /// the memory controller.
    ///
    /// # Errors
    ///
    /// Fails with [`SevError::AsidInUse`] if another context holds the
    /// ASID. Note what it does *not* check: nothing stops the hypervisor
    /// from later running a *different* VMCB with this ASID — the
    /// key-sharing abuse of paper §2.2 that Fidelius closes by taking over
    /// SEV metadata and VMCB integrity.
    pub fn activate(
        &mut self,
        machine: &mut Machine,
        h: Handle,
        asid: Asid,
    ) -> Result<(), SevError> {
        self.require_init()?;
        self.guest(h)?;
        if self.guests.iter().any(|(other, ctx)| *other != h && ctx.asid == Some(asid)) {
            return Err(SevError::AsidInUse(asid));
        }
        let ctx = self.guest_mut(h)?;
        ctx.asid = Some(asid);
        machine.mc.install_guest_key(asid, &ctx.kvek);
        Ok(())
    }

    /// `DEACTIVATE`: unbinds the ASID and removes the key from the memory
    /// controller.
    ///
    /// # Errors
    ///
    /// Fails if the guest was never activated.
    pub fn deactivate(&mut self, machine: &mut Machine, h: Handle) -> Result<(), SevError> {
        let ctx = self.guest_mut(h)?;
        let asid = ctx.asid.take().ok_or(SevError::NotActivated)?;
        machine.mc.uninstall_guest_key(asid);
        Ok(())
    }

    /// `DECOMMISSION`: erases the guest context. The guest must be
    /// deactivated first.
    ///
    /// # Errors
    ///
    /// Fails if an ASID is still bound.
    pub fn decommission(&mut self, h: Handle) -> Result<(), SevError> {
        let ctx = self.guest(h)?;
        if ctx.asid.is_some() {
            return Err(SevError::NotActivated); // must DEACTIVATE first
        }
        self.guests.remove(&h);
        self.io_ciphers.remove(&h);
        Ok(())
    }

    /// The ASID currently bound to a handle, if any.
    ///
    /// # Errors
    ///
    /// Unknown handle.
    pub fn asid_of(&self, h: Handle) -> Result<Option<Asid>, SevError> {
        Ok(self.guest(h)?.asid)
    }

    /// Guest status (state + policy), the `GUEST_STATUS` command.
    ///
    /// # Errors
    ///
    /// Unknown handle.
    pub fn guest_status(&self, h: Handle) -> Result<(GuestState, GuestPolicy), SevError> {
        let ctx = self.guest(h)?;
        Ok((ctx.state, ctx.policy))
    }

    // ----- send (source side) ----------------------------------------------

    /// `SEND_START`: stops the guest and prepares transport keys wrapped
    /// for `target_pdh`. Returns the session blob to ship to the target.
    ///
    /// # Errors
    ///
    /// Requires the `Running` state.
    pub fn send_start(
        &mut self,
        h: Handle,
        target_pdh: &[u8; 32],
    ) -> Result<SessionBlob, SevError> {
        self.require_init()?;
        let origin_pdh = *self.pdh.public();
        let shared = self.pdh.agree(target_pdh);
        let nonce = self.rng.next_bytes32();
        let tek = self.rng.next_key128();
        let tik = self.rng.next_key128();
        let ctx = self.guest_mut(h)?;
        ctx.require(GuestState::Running)?;
        let kek = derive_session_kek(&shared, &nonce);
        let wrapped_keys = wrap_transport_keys(&kek, &tek, &tik);
        ctx.tek = Some(tek);
        ctx.tik = Some(tik);
        ctx.measurement = Sha256::new();
        ctx.state = GuestState::Sending;
        // The transport key just rotated: drop any cached `Ktek` schedule
        // so the next page command re-expands the fresh key.
        if let Some(cached) = self.io_ciphers.get_mut(&h) {
            cached.tek = None;
        }
        Ok(SessionBlob { wrapped_keys, origin_pdh, nonce })
    }

    /// `SEND_UPDATE_DATA` for one page: re-encrypts the guest page at
    /// `src_pa` from `Kvek` to `Ktek`, returning the transport ciphertext.
    /// `page_index` keys the CTR stream and must be unique per page.
    ///
    /// # Errors
    ///
    /// Requires the `Sending` state.
    pub fn send_update_page(
        &mut self,
        machine: &mut Machine,
        h: Handle,
        src_pa: Hpa,
        page_index: u64,
    ) -> Result<Vec<u8>, SevError> {
        let ciphers = self.cached_ciphers(h, GuestState::Sending)?;
        let span = machine.span_open(
            SpanKind::CryptoRun,
            "crypto:send_update",
            &[("page", ArgValue::U64(page_index))],
        );
        let mut page = vec![0u8; PAGE_SIZE as usize];
        if let Err(e) = machine.mc.dram().read_raw(src_pa, &mut page) {
            machine.span_close(span);
            return Err(SevError::Hw(e));
        }
        ciphers.engine.decrypt_blocks(src_pa.0, &mut page);
        self.guest_mut(h).expect("validated above").measurement.update(&page);
        let tek = ciphers.tek.expect("sending state implies transport keys");
        let ctr = Ctr128::from_cipher(tek, 0x7EC0_0000_0000_0000);
        ctr.apply(page_index * (PAGE_SIZE / 16), &mut page);
        let lines = PAGE_SIZE.div_ceil(fidelius_hw::CACHE_LINE);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            2.0 * lines as f64 * machine.cost.engine_line_extra,
        );
        machine.span_close(span);
        Ok(page)
    }

    /// `SEND_FINISH`: returns the transport integrity tag and puts the
    /// guest back to `Running` (the source usually decommissions it next).
    ///
    /// # Errors
    ///
    /// Requires the `Sending` state.
    pub fn send_finish(&mut self, h: Handle) -> Result<[u8; 32], SevError> {
        let ctx = self.guest_mut(h)?;
        ctx.require(GuestState::Sending)?;
        let tik = ctx.tik.expect("sending state implies transport keys");
        let digest = ctx.measurement.clone().finalize();
        ctx.state = GuestState::Running;
        Ok(hmac_sha256(&tik, &digest))
    }

    // ----- receive (target side) --------------------------------------------

    /// `RECEIVE_START`: unwraps the transport keys from the session blob
    /// and creates a context with a fresh `Kvek`.
    ///
    /// # Errors
    ///
    /// [`SevError::BadSessionKeys`] when the blob was not wrapped for this
    /// platform (or was tampered with). On retrofitted firmware,
    /// [`SevError::SessionNonceReplayed`] when the session nonce was
    /// already consumed by an earlier *successful* receive — the
    /// anti-rollback check vanilla SEV lacks. A nonce is only committed at
    /// [`Firmware::receive_finish`], so a transfer that failed integrity
    /// verification can be retried with the same session blob.
    pub fn receive_start(
        &mut self,
        session: &SessionBlob,
        policy: GuestPolicy,
    ) -> Result<Handle, SevError> {
        self.require_init()?;
        if self.mode == FwMode::Retrofit && self.seen_nonces.contains(&session.nonce) {
            return Err(SevError::SessionNonceReplayed);
        }
        let shared = self.pdh.agree(&session.origin_pdh);
        let kek = derive_session_kek(&shared, &session.nonce);
        let (tek, tik) = unwrap_transport_keys(&kek, &session.wrapped_keys)?;
        let kvek = self.rng.next_key128();
        let h = self.fresh_handle();
        let mut ctx = GuestContext::new(kvek, policy, GuestState::Receiving);
        ctx.tek = Some(tek);
        ctx.tik = Some(tik);
        if self.mode == FwMode::Retrofit {
            ctx.session_nonce = Some(session.nonce);
        }
        self.guests.insert(h, ctx);
        Ok(h)
    }

    /// `RECEIVE_UPDATE_DATA` for one page: decrypts transport ciphertext
    /// and re-encrypts it under the guest's `Kvek` at `dst_pa`.
    ///
    /// # Errors
    ///
    /// Requires the `Receiving` state; `chunk` must be one page.
    pub fn receive_update_page(
        &mut self,
        machine: &mut Machine,
        h: Handle,
        chunk: &[u8],
        page_index: u64,
        dst_pa: Hpa,
    ) -> Result<(), SevError> {
        let ciphers = self.cached_ciphers(h, GuestState::Receiving)?;
        assert_eq!(chunk.len() as u64, PAGE_SIZE, "receive chunks are pages");
        let span = machine.span_open(
            SpanKind::CryptoRun,
            "crypto:receive_update",
            &[("page", ArgValue::U64(page_index))],
        );
        let tek = ciphers.tek.expect("receiving state implies transport keys");
        let mut page = chunk.to_vec();
        let ctr = Ctr128::from_cipher(tek, 0x7EC0_0000_0000_0000);
        ctr.apply(page_index * (PAGE_SIZE / 16), &mut page);
        self.guest_mut(h).expect("validated above").measurement.update(&page);
        ciphers.engine.encrypt_blocks(dst_pa.0, &mut page);
        if let Err(e) = machine.mc.dram_mut().write_raw(dst_pa, &page) {
            machine.span_close(span);
            return Err(SevError::Hw(e));
        }
        let lines = PAGE_SIZE.div_ceil(fidelius_hw::CACHE_LINE);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            2.0 * lines as f64 * machine.cost.engine_line_extra,
        );
        machine.span_close(span);
        Ok(())
    }

    /// `RECEIVE_FINISH`: verifies the transport integrity tag; on success
    /// the guest becomes runnable.
    ///
    /// # Errors
    ///
    /// [`SevError::BadMeasurement`] if any received page was tampered
    /// with, reordered or replayed.
    pub fn receive_finish(&mut self, h: Handle, expected_tag: &[u8; 32]) -> Result<(), SevError> {
        let ctx = self.guest_mut(h)?;
        ctx.require(GuestState::Receiving)?;
        let tik = ctx.tik.expect("receiving state implies transport keys");
        let digest = ctx.measurement.clone().finalize();
        if !verify_hmac_sha256(&tik, &digest, expected_tag) {
            return Err(SevError::BadMeasurement);
        }
        ctx.state = GuestState::Running;
        // Retrofit anti-rollback: the nonce is burned only now that the
        // transfer verified end-to-end.
        let nonce = ctx.session_nonce.take();
        if let Some(n) = nonce {
            self.seen_nonces.insert(n);
        }
        Ok(())
    }

    // ----- the paper's SEV-based I/O helpers (§4.3.5) ------------------------

    /// Creates the s-dom and r-dom helper contexts for a guest: both share
    /// the guest's `Kvek` and a fresh I/O transport key, with s-dom pinned
    /// in the sending state and r-dom in the receiving state — the trick
    /// that makes `SEND_UPDATE`/`RECEIVE_UPDATE` usable for I/O encryption
    /// while the guest itself stays in `Running`.
    ///
    /// # Errors
    ///
    /// The guest must exist; key-sharing policy forbids helpers when
    /// `no_key_sharing` is set.
    pub fn create_io_helpers(&mut self, h: Handle) -> Result<IoHelpers, SevError> {
        self.require_init()?;
        let parent = self.guest(h)?.clone();
        if parent.policy.no_key_sharing {
            return Err(SevError::InvalidGuestState {
                expected: GuestState::Running,
                actual: parent.state,
            });
        }
        let tek = self.rng.next_key128();
        let tik = self.rng.next_key128();
        let mut sdom_ctx = GuestContext::new(parent.kvek, parent.policy, GuestState::Sending);
        sdom_ctx.tek = Some(tek);
        sdom_ctx.tik = Some(tik);
        let mut rdom_ctx = GuestContext::new(parent.kvek, parent.policy, GuestState::Receiving);
        rdom_ctx.tek = Some(tek);
        rdom_ctx.tik = Some(tik);
        let sdom = self.fresh_handle();
        self.guests.insert(sdom, sdom_ctx);
        let rdom = self.fresh_handle();
        self.guests.insert(rdom, rdom_ctx);
        Ok(IoHelpers { sdom, rdom })
    }

    /// I/O write path: reads `len` bytes of `Kvek`-encrypted data at
    /// `src_pa` (the guest's dedicated buffer `Md`) and writes
    /// `Ktek`-encrypted data to `dst_pa` (the shared I/O buffer).
    /// `stream` keys the CTR stream (use the sector number).
    ///
    /// # Errors
    ///
    /// Requires a `Sending`-state helper context.
    pub fn io_encrypt(
        &mut self,
        machine: &mut Machine,
        sdom: Handle,
        src_pa: Hpa,
        dst_pa: Hpa,
        len: u64,
        stream: u64,
    ) -> Result<(), SevError> {
        let ciphers = self.cached_ciphers(sdom, GuestState::Sending)?;
        assert_eq!(len % 16, 0, "io length must be block aligned");
        assert_eq!(src_pa.0 % 16, 0, "io buffers must be block aligned");
        let mut buf = vec![0u8; len as usize];
        machine.mc.dram().read_raw(src_pa, &mut buf).map_err(SevError::Hw)?;
        ciphers.engine.decrypt_blocks(src_pa.0, &mut buf);
        let tek = ciphers.tek.expect("sending state implies transport keys");
        let ctr = Ctr128::from_cipher(tek, 0x10_0000_0000_0000 ^ stream);
        ctr.apply(0, &mut buf);
        machine.mc.dram_mut().write_raw(dst_pa, &buf).map_err(SevError::Hw)?;
        let lines = len.div_ceil(fidelius_hw::CACHE_LINE).max(1);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            2.0 * lines as f64 * machine.cost.engine_line_extra,
        );
        Ok(())
    }

    /// I/O read path: reads `Ktek`-encrypted data at `src_pa` (shared
    /// buffer) and writes `Kvek`-encrypted data to `dst_pa` (the guest's
    /// dedicated buffer).
    ///
    /// # Errors
    ///
    /// Requires a `Receiving`-state helper context.
    pub fn io_decrypt(
        &mut self,
        machine: &mut Machine,
        rdom: Handle,
        src_pa: Hpa,
        dst_pa: Hpa,
        len: u64,
        stream: u64,
    ) -> Result<(), SevError> {
        let ciphers = self.cached_ciphers(rdom, GuestState::Receiving)?;
        assert_eq!(len % 16, 0, "io length must be block aligned");
        assert_eq!(dst_pa.0 % 16, 0, "io buffers must be block aligned");
        let mut buf = vec![0u8; len as usize];
        machine.mc.dram().read_raw(src_pa, &mut buf).map_err(SevError::Hw)?;
        let tek = ciphers.tek.expect("receiving state implies transport keys");
        let ctr = Ctr128::from_cipher(tek, 0x10_0000_0000_0000 ^ stream);
        ctr.apply(0, &mut buf);
        ciphers.engine.encrypt_blocks(dst_pa.0, &mut buf);
        machine.mc.dram_mut().write_raw(dst_pa, &buf).map_err(SevError::Hw)?;
        let lines = len.div_ceil(fidelius_hw::CACHE_LINE).max(1);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            2.0 * lines as f64 * machine.cost.engine_line_extra,
        );
        Ok(())
    }

    /// The cached expanded key schedules for context `h`, validating its
    /// state. Built on first use; the `Kvek` is immutable and handle
    /// numbers are never reused, so the engine schedule cannot go stale.
    /// The `Ktek` schedule is expanded the first time the context is seen
    /// holding transport keys; `SEND_START` — the only command that
    /// rotates a live handle's `Ktek` — evicts the entry first.
    fn cached_ciphers(&mut self, h: Handle, expected: GuestState) -> Result<IoCiphers, SevError> {
        let ctx = self.guest(h)?;
        ctx.require(expected)?;
        let kvek = ctx.kvek;
        let tek = ctx.tek;
        let entry = self
            .io_ciphers
            .entry(h)
            .or_insert_with(|| IoCiphers { engine: PaTweakCipher::new(&kvek), tek: None });
        if entry.tek.is_none() {
            if let Some(k) = tek {
                entry.tek = Some(Aes128::new(&k));
            }
        }
        Ok(entry.clone())
    }

    /// Batched I/O write path: byte- and cycle-identical to `sectors`
    /// consecutive [`Firmware::io_encrypt`] calls of one sector each
    /// (sector `s` at `src_pa + 512·s` → `dst_pa + 512·s` with stream
    /// `first_stream + s`), but the whole run moves through one DRAM read,
    /// one streaming XEX pass over the cached `Kvek` schedule, per-sector
    /// CTR contexts cloned from the cached `Ktek` schedule, and one DRAM
    /// write. The source and destination runs must not overlap (they are
    /// the disjoint `Md` and shared-buffer windows).
    ///
    /// # Errors
    ///
    /// Requires a `Sending`-state helper context.
    pub fn io_encrypt_sectors(
        &mut self,
        machine: &mut Machine,
        sdom: Handle,
        src_pa: Hpa,
        dst_pa: Hpa,
        sectors: u64,
        first_stream: u64,
    ) -> Result<(), SevError> {
        let ciphers = self.cached_ciphers(sdom, GuestState::Sending)?;
        let tek = ciphers.tek.expect("sending state implies transport keys");
        assert_eq!(src_pa.0 % 16, 0, "io buffers must be block aligned");
        if sectors == 0 {
            return Ok(());
        }
        let len = sectors * SECTOR_SIZE as u64;
        debug_assert!(
            src_pa.0 + len <= dst_pa.0 || dst_pa.0 + len <= src_pa.0,
            "batched io runs must not overlap"
        );
        let mut buf = vec![0u8; len as usize];
        machine.mc.dram().read_raw(src_pa, &mut buf).map_err(SevError::Hw)?;
        ciphers.engine.decrypt_blocks(src_pa.0, &mut buf);
        for (s, sector) in buf.chunks_exact_mut(SECTOR_SIZE).enumerate() {
            let stream = first_stream.wrapping_add(s as u64);
            Ctr128::apply_with(&tek, 0x10_0000_0000_0000 ^ stream, 0, sector);
        }
        machine.mc.dram_mut().write_raw(dst_pa, &buf).map_err(SevError::Hw)?;
        let lines = len.div_ceil(fidelius_hw::CACHE_LINE).max(1);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            2.0 * lines as f64 * machine.cost.engine_line_extra,
        );
        Ok(())
    }

    /// Batched I/O read path; the mirror of
    /// [`Firmware::io_encrypt_sectors`] over [`Firmware::io_decrypt`].
    ///
    /// # Errors
    ///
    /// Requires a `Receiving`-state helper context.
    pub fn io_decrypt_sectors(
        &mut self,
        machine: &mut Machine,
        rdom: Handle,
        src_pa: Hpa,
        dst_pa: Hpa,
        sectors: u64,
        first_stream: u64,
    ) -> Result<(), SevError> {
        let ciphers = self.cached_ciphers(rdom, GuestState::Receiving)?;
        let tek = ciphers.tek.expect("receiving state implies transport keys");
        assert_eq!(dst_pa.0 % 16, 0, "io buffers must be block aligned");
        if sectors == 0 {
            return Ok(());
        }
        let len = sectors * SECTOR_SIZE as u64;
        debug_assert!(
            src_pa.0 + len <= dst_pa.0 || dst_pa.0 + len <= src_pa.0,
            "batched io runs must not overlap"
        );
        let mut buf = vec![0u8; len as usize];
        machine.mc.dram().read_raw(src_pa, &mut buf).map_err(SevError::Hw)?;
        for (s, sector) in buf.chunks_exact_mut(SECTOR_SIZE).enumerate() {
            let stream = first_stream.wrapping_add(s as u64);
            Ctr128::apply_with(&tek, 0x10_0000_0000_0000 ^ stream, 0, sector);
        }
        ciphers.engine.encrypt_blocks(dst_pa.0, &mut buf);
        machine.mc.dram_mut().write_raw(dst_pa, &buf).map_err(SevError::Hw)?;
        let lines = len.div_ceil(fidelius_hw::CACHE_LINE).max(1);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            2.0 * lines as f64 * machine.cost.engine_line_extra,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelius_hw::memctrl::EncSel;

    fn setup() -> (Machine, Firmware) {
        let machine = Machine::new(256 * PAGE_SIZE);
        let mut fw = Firmware::new(42);
        fw.init().unwrap();
        (machine, fw)
    }

    #[test]
    fn init_is_once() {
        let mut fw = Firmware::new(1);
        assert_eq!(fw.platform_state(), PlatformState::Uninitialized);
        fw.init().unwrap();
        assert!(matches!(fw.init(), Err(SevError::InvalidPlatformState { .. })));
    }

    #[test]
    fn commands_require_init() {
        let mut fw = Firmware::new(1);
        assert!(matches!(
            fw.launch_start(GuestPolicy::default()),
            Err(SevError::InvalidPlatformState { .. })
        ));
    }

    #[test]
    fn launch_encrypts_in_place_and_measures() {
        let (mut m, mut fw) = setup();
        let h = fw.launch_start(GuestPolicy::default()).unwrap();
        let pa = Hpa(0x4000);
        m.mc.dram_mut().write_raw(pa, b"kernel code here").unwrap();
        fw.launch_update_data(&mut m, h, pa, 16).unwrap();
        // DRAM now holds ciphertext.
        let mut raw = [0u8; 16];
        m.mc.dram().read_raw(pa, &mut raw).unwrap();
        assert_ne!(&raw, b"kernel code here");
        let m1 = fw.launch_measure(h).unwrap();
        fw.launch_update_data(&mut m, h, Hpa(0x5000), 16).unwrap();
        let m2 = fw.launch_measure(h).unwrap();
        assert_ne!(m1, m2, "measurement must extend");
        fw.launch_finish(h).unwrap();
        assert!(matches!(
            fw.launch_update_data(&mut m, h, pa, 16),
            Err(SevError::InvalidGuestState { .. })
        ));
    }

    #[test]
    fn activate_installs_key_and_guards_asid() {
        let (mut m, mut fw) = setup();
        let h1 = fw.launch_start(GuestPolicy::default()).unwrap();
        let h2 = fw.launch_start(GuestPolicy::default()).unwrap();
        fw.activate(&mut m, h1, Asid(1)).unwrap();
        assert!(m.mc.has_guest_key(Asid(1)));
        assert!(matches!(fw.activate(&mut m, h2, Asid(1)), Err(SevError::AsidInUse(_))));
        fw.activate(&mut m, h2, Asid(2)).unwrap();
        fw.deactivate(&mut m, h1).unwrap();
        assert!(!m.mc.has_guest_key(Asid(1)));
        // Now ASID 1 is free again.
        fw.activate(&mut m, h2, Asid(1)).unwrap();
    }

    #[test]
    fn decommission_requires_deactivate() {
        let (mut m, mut fw) = setup();
        let h = fw.launch_start(GuestPolicy::default()).unwrap();
        fw.activate(&mut m, h, Asid(1)).unwrap();
        assert!(fw.decommission(h).is_err());
        fw.deactivate(&mut m, h).unwrap();
        fw.decommission(h).unwrap();
        assert!(matches!(fw.asid_of(h), Err(SevError::UnknownHandle(_))));
    }

    /// Full send → receive migration between two firmware instances, with
    /// integrity verification.
    #[test]
    fn migration_roundtrip() {
        let (mut m, mut src_fw) = setup();
        let mut dst_fw = Firmware::new(77);
        dst_fw.init().unwrap();

        // Launch a guest on the source and give it a page of secrets.
        let h = src_fw.launch_start(GuestPolicy::default()).unwrap();
        let src_pa = Hpa(0x8000);
        let mut page = vec![0u8; PAGE_SIZE as usize];
        page[..18].copy_from_slice(b"very secret state!");
        m.mc.dram_mut().write_raw(src_pa, &page).unwrap();
        src_fw.launch_update_data(&mut m, h, src_pa, PAGE_SIZE).unwrap();
        src_fw.launch_finish(h).unwrap();

        // Send.
        let session = src_fw.send_start(h, &dst_fw.pdh_public()).unwrap();
        let ct = src_fw.send_update_page(&mut m, h, src_pa, 0).unwrap();
        let tag = src_fw.send_finish(h).unwrap();
        assert_ne!(&ct[..18], b"very secret state!", "transport is encrypted");

        // Receive on the destination (same machine object for simplicity —
        // different physical placement).
        let rh = dst_fw.receive_start(&session, GuestPolicy::default()).unwrap();
        let dst_pa = Hpa(0xC000);
        dst_fw.receive_update_page(&mut m, rh, &ct, 0, dst_pa).unwrap();
        dst_fw.receive_finish(rh, &tag).unwrap();

        // Activate and read back through the engine: plaintext restored.
        dst_fw.activate(&mut m, rh, Asid(9)).unwrap();
        let mut back = [0u8; 18];
        m.mc.read(dst_pa, &mut back, EncSel::Guest(Asid(9))).unwrap();
        assert_eq!(&back, b"very secret state!");
    }

    #[test]
    fn tampered_transport_fails_receive_finish() {
        let (mut m, mut src_fw) = setup();
        let mut dst_fw = Firmware::new(78);
        dst_fw.init().unwrap();
        let h = src_fw.launch_start(GuestPolicy::default()).unwrap();
        let src_pa = Hpa(0x8000);
        src_fw.launch_update_data(&mut m, h, src_pa, PAGE_SIZE).unwrap();
        src_fw.launch_finish(h).unwrap();
        let session = src_fw.send_start(h, &dst_fw.pdh_public()).unwrap();
        let mut ct = src_fw.send_update_page(&mut m, h, src_pa, 0).unwrap();
        let tag = src_fw.send_finish(h).unwrap();
        ct[100] ^= 0xFF; // man-in-the-middle hypervisor flips a byte
        let rh = dst_fw.receive_start(&session, GuestPolicy::default()).unwrap();
        dst_fw.receive_update_page(&mut m, rh, &ct, 0, Hpa(0xC000)).unwrap();
        assert_eq!(dst_fw.receive_finish(rh, &tag), Err(SevError::BadMeasurement));
    }

    #[test]
    fn session_for_wrong_platform_fails_unwrap() {
        let (_m, mut src_fw) = setup();
        let mut other_fw = Firmware::new(79);
        other_fw.init().unwrap();
        let mut third_fw = Firmware::new(80);
        third_fw.init().unwrap();
        let h = src_fw.launch_start(GuestPolicy::default()).unwrap();
        src_fw.launch_finish(h).unwrap();
        let session = src_fw.send_start(h, &other_fw.pdh_public()).unwrap();
        // A different machine (the colluding target the hypervisor wants)
        // cannot unwrap the keys.
        assert_eq!(
            third_fw.receive_start(&session, GuestPolicy::default()).unwrap_err(),
            SevError::BadSessionKeys
        );
    }

    #[test]
    fn io_helpers_roundtrip() {
        let (mut m, mut fw) = setup();
        let h = fw.launch_start(GuestPolicy::default()).unwrap();
        fw.launch_finish(h).unwrap();
        fw.activate(&mut m, h, Asid(4)).unwrap();
        let helpers = fw.create_io_helpers(h).unwrap();

        // The guest writes plaintext through the engine at Md.
        let md = Hpa(0x6000);
        let shared = Hpa(0x7000);
        let md_back = Hpa(0x6800);
        m.mc.write(md, b"disk sector data", EncSel::Guest(Asid(4))).unwrap();

        // Fidelius: SEND_UPDATE (Kvek → Ktek) into the shared buffer.
        fw.io_encrypt(&mut m, helpers.sdom, md, shared, 16, 5).unwrap();
        let mut shared_raw = [0u8; 16];
        m.mc.dram().read_raw(shared, &mut shared_raw).unwrap();
        assert_ne!(&shared_raw, b"disk sector data", "shared buffer holds Ktek ciphertext");

        // Fidelius: RECEIVE_UPDATE (Ktek → Kvek) back into guest memory.
        fw.io_decrypt(&mut m, helpers.rdom, shared, md_back, 16, 5).unwrap();
        let mut plain = [0u8; 16];
        m.mc.read(md_back, &mut plain, EncSel::Guest(Asid(4))).unwrap();
        assert_eq!(&plain, b"disk sector data");
    }

    /// The batched sector entry points must be byte- and cycle-identical
    /// to the per-sector oracle loop — the contract the blkif batched
    /// drain is built on.
    #[test]
    fn io_sector_batch_matches_per_sector_oracle() {
        // Same seed + same command sequence → same helper keys on both
        // firmware instances, so the two machines see identical crypto.
        let build = || {
            let (mut m, mut fw) = setup();
            let h = fw.launch_start(GuestPolicy::default()).unwrap();
            fw.launch_finish(h).unwrap();
            fw.activate(&mut m, h, Asid(4)).unwrap();
            let helpers = fw.create_io_helpers(h).unwrap();
            (m, fw, helpers)
        };
        let (mut ma, mut fa, ha) = build();
        let (mut mb, mut fb, hb) = build();
        let sectors = 4u64;
        let data: Vec<u8> =
            (0..sectors as usize * 512).map(|i| (i as u8).wrapping_mul(31)).collect();
        let (src, dst, back) = (Hpa(0x6000), Hpa(0x10000), Hpa(0x20000));
        ma.mc.dram_mut().write_raw(src, &data).unwrap();
        mb.mc.dram_mut().write_raw(src, &data).unwrap();

        for s in 0..sectors {
            fa.io_encrypt(&mut ma, ha.sdom, Hpa(src.0 + 512 * s), Hpa(dst.0 + 512 * s), 512, 9 + s)
                .unwrap();
        }
        fb.io_encrypt_sectors(&mut mb, hb.sdom, src, dst, sectors, 9).unwrap();
        let mut ct_a = vec![0u8; data.len()];
        let mut ct_b = vec![0u8; data.len()];
        ma.mc.dram().read_raw(dst, &mut ct_a).unwrap();
        mb.mc.dram().read_raw(dst, &mut ct_b).unwrap();
        assert_eq!(ct_a, ct_b, "batched ciphertext must match per-sector");

        for s in 0..sectors {
            fa.io_decrypt(
                &mut ma,
                ha.rdom,
                Hpa(dst.0 + 512 * s),
                Hpa(back.0 + 512 * s),
                512,
                9 + s,
            )
            .unwrap();
        }
        fb.io_decrypt_sectors(&mut mb, hb.rdom, dst, back, sectors, 9).unwrap();
        let mut pt_a = vec![0u8; data.len()];
        let mut pt_b = vec![0u8; data.len()];
        ma.mc.dram().read_raw(back, &mut pt_a).unwrap();
        mb.mc.dram().read_raw(back, &mut pt_b).unwrap();
        assert_eq!(pt_a, pt_b, "batched re-encryption must match per-sector");
        assert_eq!(
            ma.cycles.total_f64(),
            mb.cycles.total_f64(),
            "batched path must charge identical modeled cycles"
        );
    }

    #[test]
    fn io_helpers_respect_no_key_sharing_policy() {
        let (_m, mut fw) = setup();
        let h = fw.launch_start(GuestPolicy { no_key_sharing: true, no_debug: false }).unwrap();
        assert!(fw.create_io_helpers(h).is_err());
    }

    #[test]
    fn helper_states_reject_wrong_direction() {
        let (mut m, mut fw) = setup();
        let h = fw.launch_start(GuestPolicy::default()).unwrap();
        fw.launch_finish(h).unwrap();
        let helpers = fw.create_io_helpers(h).unwrap();
        // io_decrypt on the sending helper must fail, and vice versa.
        assert!(fw.io_decrypt(&mut m, helpers.sdom, Hpa(0), Hpa(16), 16, 0).is_err());
        assert!(fw.io_encrypt(&mut m, helpers.rdom, Hpa(0), Hpa(16), 16, 0).is_err());
    }

    /// Attestation rollback at the firmware layer: a session blob consumed
    /// by a successful receive cannot start a second receive on retrofit
    /// firmware, but vanilla firmware accepts the replay.
    #[test]
    fn retrofit_refuses_replayed_session_nonce_vanilla_accepts() {
        let (mut m, mut src_fw) = setup();
        let mut retro = Firmware::new(91);
        retro.init().unwrap();
        let mut vanilla = Firmware::new_vanilla(91); // same seed → same PDH
        vanilla.init().unwrap();
        assert_eq!(retro.mode(), FwMode::Retrofit);
        assert_eq!(vanilla.mode(), FwMode::Vanilla);
        assert_eq!(retro.pdh_public(), vanilla.pdh_public());

        let mut run_through = |dst: &mut Firmware, m: &mut Machine| {
            let h = src_fw.launch_start(GuestPolicy::default()).unwrap();
            let src_pa = Hpa(0x8000);
            src_fw.launch_update_data(m, h, src_pa, PAGE_SIZE).unwrap();
            src_fw.launch_finish(h).unwrap();
            let session = src_fw.send_start(h, &dst.pdh_public()).unwrap();
            let ct = src_fw.send_update_page(m, h, src_pa, 0).unwrap();
            let tag = src_fw.send_finish(h).unwrap();
            (session, ct, tag)
        };

        let (session, ct, tag) = run_through(&mut retro, &mut m);
        let rh = retro.receive_start(&session, GuestPolicy::default()).unwrap();
        retro.receive_update_page(&mut m, rh, &ct, 0, Hpa(0xC000)).unwrap();
        retro.receive_finish(rh, &tag).unwrap();
        // Replay against retrofit: refused at RECEIVE_START, typed.
        assert_eq!(
            retro.receive_start(&session, GuestPolicy::default()).unwrap_err(),
            SevError::SessionNonceReplayed
        );

        let (session, ct, tag) = run_through(&mut vanilla, &mut m);
        for _ in 0..2 {
            // Vanilla: the same stale session boots as often as the
            // hypervisor replays it.
            let rh = vanilla.receive_start(&session, GuestPolicy::default()).unwrap();
            vanilla.receive_update_page(&mut m, rh, &ct, 0, Hpa(0xD000)).unwrap();
            vanilla.receive_finish(rh, &tag).unwrap();
        }
    }

    /// A tampered transfer must not burn the nonce: the owner can resend
    /// the same session blob after the hypervisor corrupted the stream.
    #[test]
    fn failed_receive_does_not_consume_nonce() {
        let (mut m, mut src_fw) = setup();
        let mut dst = Firmware::new(92);
        dst.init().unwrap();
        let h = src_fw.launch_start(GuestPolicy::default()).unwrap();
        let src_pa = Hpa(0x8000);
        src_fw.launch_update_data(&mut m, h, src_pa, PAGE_SIZE).unwrap();
        src_fw.launch_finish(h).unwrap();
        let session = src_fw.send_start(h, &dst.pdh_public()).unwrap();
        let ct = src_fw.send_update_page(&mut m, h, src_pa, 0).unwrap();
        let tag = src_fw.send_finish(h).unwrap();

        let mut bad = ct.clone();
        bad[0] ^= 0x01;
        let rh = dst.receive_start(&session, GuestPolicy::default()).unwrap();
        dst.receive_update_page(&mut m, rh, &bad, 0, Hpa(0xC000)).unwrap();
        assert_eq!(dst.receive_finish(rh, &tag), Err(SevError::BadMeasurement));

        // Retry with the pristine stream and the *same* session: accepted.
        let rh = dst.receive_start(&session, GuestPolicy::default()).unwrap();
        dst.receive_update_page(&mut m, rh, &ct, 0, Hpa(0xC000)).unwrap();
        dst.receive_finish(rh, &tag).unwrap();
        // And only now is the nonce burned.
        assert_eq!(
            dst.receive_start(&session, GuestPolicy::default()).unwrap_err(),
            SevError::SessionNonceReplayed
        );
    }

    #[test]
    fn send_requires_running() {
        let (_m, mut fw) = setup();
        let h = fw.launch_start(GuestPolicy::default()).unwrap();
        // Still Launching.
        let pdh = fw.pdh_public();
        assert!(matches!(fw.send_start(h, &pdh), Err(SevError::InvalidGuestState { .. })));
    }
}
