//! The paper's §8 hardware suggestion #2, implemented: **customized keys**.
//!
//! > "a better solution is to add a series of instructions which are
//! > similar to SEND and RECEIVE APIs except that they allow customized
//! > keys. Specifically, we can use a SETENC_GEK instruction to generate a
//! > customized guest encryption key (GEK), which is then used to encrypt
//! > and decrypt specified memory range through the ENC and DEC series of
//! > APIs."
//!
//! This removes the two pain points the paper lists: the owner no longer
//! pre-binds the kernel image to one machine's ECDH identity, and I/O
//! encryption no longer needs the s-dom/r-dom state contortion — a GEK is
//! a first-class firmware object with direct ENC/DEC commands.

use crate::error::SevError;
use crate::firmware::{Firmware, GuestState, Handle};
use fidelius_crypto::modes::Ctr128;
use fidelius_crypto::rng::Xoshiro256;
use fidelius_crypto::Key128;
use fidelius_hw::cpu::Machine;
use fidelius_hw::Hpa;
use std::collections::HashMap;

/// A handle naming a customized guest encryption key inside the firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GekHandle(pub u32);

/// The GEK extension state, attached to a [`Firmware`].
///
/// Modeled as a separate engine so the baseline firmware stays exactly
/// the shipping SEV API; a platform with the §8 extension instantiates
/// both.
pub struct GekEngine {
    keys: HashMap<GekHandle, (Handle, Key128)>,
    next: u32,
    rng: Xoshiro256,
}

impl std::fmt::Debug for GekEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GekEngine").field("keys", &self.keys.len()).finish()
    }
}

impl GekEngine {
    /// A fresh engine (deterministic from the seed).
    pub fn new(seed: u64) -> Self {
        GekEngine { keys: HashMap::new(), next: 1, rng: Xoshiro256::new(seed ^ 0x6E4B) }
    }

    /// `SETENC_GEK`: generates a customized key bound to an existing guest
    /// context. Only the owning guest's context may use it later.
    ///
    /// # Errors
    ///
    /// The guest must exist and be runnable.
    pub fn setenc_gek(&mut self, fw: &Firmware, guest: Handle) -> Result<GekHandle, SevError> {
        let (state, _) = fw.guest_status(guest)?;
        if state != GuestState::Running && state != GuestState::Launching {
            return Err(SevError::InvalidGuestState {
                expected: GuestState::Running,
                actual: state,
            });
        }
        let h = GekHandle(self.next);
        self.next += 1;
        self.keys.insert(h, (guest, self.rng.next_key128()));
        Ok(h)
    }

    fn key_for(&self, gek: GekHandle, guest: Handle) -> Result<&Key128, SevError> {
        match self.keys.get(&gek) {
            Some((owner, key)) if *owner == guest => Ok(key),
            Some(_) => Err(SevError::BadSessionKeys), // wrong guest context
            None => Err(SevError::UnknownHandle(gek.0)),
        }
    }

    /// `ENC`: encrypts `len` bytes at physical `pa` in place under the GEK
    /// (CTR keyed by `stream`, e.g. the sector number). Unlike the
    /// engine's PA-tweaked mode, GEK ciphertext is position-independent —
    /// it is *meant* to travel (to disk, over migration channels).
    ///
    /// # Errors
    ///
    /// Unknown handles, wrong guest binding, bad physical ranges.
    pub fn enc(
        &self,
        machine: &mut Machine,
        guest: Handle,
        gek: GekHandle,
        pa: Hpa,
        len: u64,
        stream: u64,
    ) -> Result<(), SevError> {
        let key = self.key_for(gek, guest)?;
        let mut buf = vec![0u8; len as usize];
        machine.mc.dram().read_raw(pa, &mut buf).map_err(SevError::Hw)?;
        Ctr128::new(key, stream).apply(0, &mut buf);
        machine.mc.dram_mut().write_raw(pa, &buf).map_err(SevError::Hw)?;
        let lines = len.div_ceil(fidelius_hw::CACHE_LINE).max(1);
        machine.cycles.charge_as(
            fidelius_hw::cycles::CycleCategory::CryptoEngine,
            lines as f64 * machine.cost.engine_line_extra,
        );
        Ok(())
    }

    /// `DEC`: the inverse of [`GekEngine::enc`] (CTR is an involution, but
    /// the separate entry point keeps the instruction-set shape of §8).
    ///
    /// # Errors
    ///
    /// Same as `ENC`.
    pub fn dec(
        &self,
        machine: &mut Machine,
        guest: Handle,
        gek: GekHandle,
        pa: Hpa,
        len: u64,
        stream: u64,
    ) -> Result<(), SevError> {
        self.enc(machine, guest, gek, pa, len, stream)
    }

    /// Destroys a GEK (guest teardown).
    pub fn drop_gek(&mut self, gek: GekHandle) -> bool {
        self.keys.remove(&gek).is_some()
    }

    /// Number of live GEKs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no GEKs exist.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::GuestPolicy;
    use fidelius_hw::PAGE_SIZE;

    fn setup() -> (Machine, Firmware, GekEngine, Handle) {
        let machine = Machine::new(64 * PAGE_SIZE);
        let mut fw = Firmware::new(1);
        fw.init().unwrap();
        let h = fw.launch_start(GuestPolicy::default()).unwrap();
        fw.launch_finish(h).unwrap();
        let gek = GekEngine::new(2);
        (machine, fw, gek, h)
    }

    #[test]
    fn enc_dec_roundtrip_and_ciphertext_at_rest() {
        let (mut m, fw, mut eng, guest) = setup();
        let gek = eng.setenc_gek(&fw, guest).unwrap();
        let pa = Hpa(0x4000);
        m.mc.dram_mut().write_raw(pa, b"customized-key data!").unwrap();
        eng.enc(&mut m, guest, gek, pa, 20, 7).unwrap();
        let mut raw = [0u8; 20];
        m.mc.dram().read_raw(pa, &mut raw).unwrap();
        assert_ne!(&raw, b"customized-key data!");
        eng.dec(&mut m, guest, gek, pa, 20, 7).unwrap();
        m.mc.dram().read_raw(pa, &mut raw).unwrap();
        assert_eq!(&raw, b"customized-key data!");
    }

    #[test]
    fn gek_ciphertext_is_position_independent() {
        // The property SEND/RECEIVE-based I/O lacks: GEK ciphertext can be
        // moved (disk, network) and decrypted elsewhere.
        let (mut m, fw, mut eng, guest) = setup();
        let gek = eng.setenc_gek(&fw, guest).unwrap();
        m.mc.dram_mut().write_raw(Hpa(0x1000), b"travelling bytes").unwrap();
        eng.enc(&mut m, guest, gek, Hpa(0x1000), 16, 3).unwrap();
        let mut ct = [0u8; 16];
        m.mc.dram().read_raw(Hpa(0x1000), &mut ct).unwrap();
        // "Write to disk, read back into a different frame."
        m.mc.dram_mut().write_raw(Hpa(0x9000), &ct).unwrap();
        eng.dec(&mut m, guest, gek, Hpa(0x9000), 16, 3).unwrap();
        let mut back = [0u8; 16];
        m.mc.dram().read_raw(Hpa(0x9000), &mut back).unwrap();
        assert_eq!(&back, b"travelling bytes");
    }

    #[test]
    fn gek_is_bound_to_its_guest() {
        let (mut m, mut fw, mut eng, guest) = setup();
        let gek = eng.setenc_gek(&fw, guest).unwrap();
        let other = fw.launch_start(GuestPolicy::default()).unwrap();
        fw.launch_finish(other).unwrap();
        // A hypervisor relaying another guest's context cannot use the key.
        assert!(matches!(
            eng.enc(&mut m, other, gek, Hpa(0x1000), 16, 0),
            Err(SevError::BadSessionKeys)
        ));
    }

    #[test]
    fn unknown_and_dropped_handles_fail() {
        let (mut m, fw, mut eng, guest) = setup();
        assert!(matches!(
            eng.enc(&mut m, guest, GekHandle(99), Hpa(0), 16, 0),
            Err(SevError::UnknownHandle(99))
        ));
        let gek = eng.setenc_gek(&fw, guest).unwrap();
        assert!(eng.drop_gek(gek));
        assert!(!eng.drop_gek(gek));
        assert!(eng.is_empty());
        assert!(eng.enc(&mut m, guest, gek, Hpa(0), 16, 0).is_err());
    }

    #[test]
    fn distinct_geks_produce_distinct_ciphertext() {
        let (mut m, fw, mut eng, guest) = setup();
        let g1 = eng.setenc_gek(&fw, guest).unwrap();
        let g2 = eng.setenc_gek(&fw, guest).unwrap();
        m.mc.dram_mut().write_raw(Hpa(0x1000), &[0u8; 16]).unwrap();
        m.mc.dram_mut().write_raw(Hpa(0x2000), &[0u8; 16]).unwrap();
        eng.enc(&mut m, guest, g1, Hpa(0x1000), 16, 0).unwrap();
        eng.enc(&mut m, guest, g2, Hpa(0x2000), 16, 0).unwrap();
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        m.mc.dram().read_raw(Hpa(0x1000), &mut a).unwrap();
        m.mc.dram().read_raw(Hpa(0x2000), &mut b).unwrap();
        assert_ne!(a, b);
    }
}
