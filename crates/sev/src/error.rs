//! SEV firmware command errors.

use crate::firmware::{GuestState, PlatformState};
use fidelius_hw::{Asid, HwError};
use std::error::Error;
use std::fmt;

/// Errors returned by SEV firmware commands.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SevError {
    /// The platform is in the wrong state for this command.
    InvalidPlatformState {
        /// Current state.
        actual: PlatformState,
    },
    /// The guest context is in the wrong state for this command.
    InvalidGuestState {
        /// State the command requires.
        expected: GuestState,
        /// Current state.
        actual: GuestState,
    },
    /// No context exists for this handle.
    UnknownHandle(u32),
    /// The ASID is already bound to another active guest.
    AsidInUse(Asid),
    /// The guest is not activated (no ASID bound).
    NotActivated,
    /// A transport/launch measurement did not verify.
    BadMeasurement,
    /// Key unwrap failed (wrong session parameters or tampering).
    BadSessionKeys,
    /// The session nonce was already consumed by an earlier successful
    /// LAUNCH/RECEIVE on this platform — a stale-measurement / rollback
    /// replay. Only the retrofitted firmware reports this; vanilla SEV
    /// firmware has no anti-replay state and accepts the stale session.
    SessionNonceReplayed,
    /// An underlying hardware access failed.
    Hw(HwError),
}

impl fmt::Display for SevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SevError::InvalidPlatformState { actual } => {
                write!(f, "invalid platform state {actual:?}")
            }
            SevError::InvalidGuestState { expected, actual } => {
                write!(f, "guest state is {actual:?}, command requires {expected:?}")
            }
            SevError::UnknownHandle(h) => write!(f, "unknown guest handle {h}"),
            SevError::AsidInUse(a) => write!(f, "asid {} already in use", a.0),
            SevError::NotActivated => write!(f, "guest has no asid bound"),
            SevError::BadMeasurement => write!(f, "measurement verification failed"),
            SevError::BadSessionKeys => write!(f, "session key unwrap failed"),
            SevError::SessionNonceReplayed => {
                write!(f, "session nonce already consumed (rollback replay)")
            }
            SevError::Hw(e) => write!(f, "hardware error: {e}"),
        }
    }
}

impl Error for SevError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SevError::Hw(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HwError> for SevError {
    fn from(e: HwError) -> Self {
        SevError::Hw(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SevError::AsidInUse(Asid(4));
        assert_eq!(e.to_string(), "asid 4 already in use");
        assert!(e.source().is_none());
        let hw = SevError::Hw(HwError::OutOfFrames);
        assert!(hw.source().is_some());
    }
}
