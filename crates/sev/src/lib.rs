//! The SEV firmware (secure processor) simulation.
//!
//! AMD's SEV firmware runs in the PSP and exposes a command interface to
//! the host: platform management (`INIT`), guest launch (`LAUNCH_*`,
//! `ACTIVATE`, `DEACTIVATE`, `DECOMMISSION`) and transport
//! (`SEND_*` / `RECEIVE_*`) for migration — the very APIs Fidelius
//! retrofits for encrypted boot (§4.3.2–4.3.3) and I/O encryption
//! (§4.3.5).
//!
//! This crate implements that command interface over the simulated
//! platform of `fidelius-hw`, with real cryptography from
//! `fidelius-crypto`:
//!
//! - per-guest `Kvek` generation and ASID key slots in the memory
//!   controller ([`Firmware::activate`]);
//! - the ECDH (X25519) session protocol deriving the key-encryption key
//!   that wraps the transport keys `Ktek`/`Ktik` (`Kwrap` in the paper);
//! - launch and transport measurements (SHA-256 + HMAC) so tampered
//!   images fail `RECEIVE_FINISH`;
//! - the s-dom / r-dom helper contexts the paper invents for SEV-based
//!   I/O encryption;
//! - the paper's §8 *customized keys* extension ([`gek`]): `SETENC_GEK` /
//!   `ENC` / `DEC` instructions with first-class guest encryption keys.
//!
//! # Trust model
//!
//! The [`Firmware`] struct's private fields are the PSP's secrets. The
//! untrusted hypervisor interacts with it *only* through these commands —
//! exactly the paper's setting, where the hypervisor can call any command
//! in any order (and the attacks crate does).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod firmware;
pub mod gek;
pub mod owner;

pub use error::SevError;
pub use firmware::{Firmware, FwMode, GuestPolicy, GuestState, Handle, PlatformState};
pub use gek::{GekEngine, GekHandle};
pub use owner::{EncryptedImage, GuestOwner};
