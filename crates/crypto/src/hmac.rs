//! HMAC-SHA256 and a small HKDF, used for SEV transport integrity
//! (`Ktik` measurements) and key derivation.

use crate::sha256::Sha256;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Example
///
/// ```
/// use fidelius_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time(ish) tag comparison. The simulation does not need true
/// constant-time behaviour, but verifying MACs through a dedicated helper
/// keeps call sites honest.
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &[u8; 32]) -> bool {
    let expected = hmac_sha256(key, message);
    expected.iter().zip(tag.iter()).fold(0u8, |acc, (a, b)| acc | (a ^ b)) == 0
}

/// HKDF-Extract (RFC 5869).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869), limited to 255 output blocks.
///
/// # Panics
///
/// Panics if more than 8160 bytes of output are requested.
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "hkdf output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut generated = 0usize;
    let mut counter = 1u8;
    while generated < out.len() {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - generated).min(32);
        out[generated..generated + take].copy_from_slice(&block[..take]);
        generated += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// Derives a 128-bit key with HKDF from input keying material and a label.
pub fn derive_key128(ikm: &[u8], label: &str) -> [u8; 16] {
    let prk = hkdf_extract(b"fidelius-hkdf-salt", ikm);
    let mut out = [0u8; 16];
    hkdf_expand(&prk, label.as_bytes(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexstr(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hexstr(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hexstr(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hexstr(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hexstr(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hexstr(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hexstr(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn derived_keys_differ_by_label() {
        let a = derive_key128(b"secret", "tek");
        let b = derive_key128(b"secret", "tik");
        assert_ne!(a, b);
        assert_eq!(a, derive_key128(b"secret", "tek"));
    }
}
