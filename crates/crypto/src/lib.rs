//! Cryptographic substrate for the Fidelius reproduction.
//!
//! Everything here is implemented from scratch so that the simulated
//! platform is fully self-contained and deterministic:
//!
//! - [`aes`] — AES-128/192/256 with runtime-dispatched host backends
//!   (8-way interleaved T-tables, a constant-time bitsliced core, and —
//!   behind the `aesni` cargo feature — the x86 AES instructions),
//!   modelling the *AES-NI* fast path the paper uses for guest-side disk
//!   encryption. All backends are bit-identical; see
//!   [`aes::AesBackend`] and `FIDELIUS_AES_BACKEND`.
//! - [`aes_soft`] — a deliberately slow, bit-level AES used to reproduce the
//!   paper's "software emulated encryption" baseline (>20× slower than
//!   AES-NI in the paper's micro-benchmark 3).
//! - [`modes`] — CTR, CBC, a tweaked sector mode for disk images, and the
//!   physical-address-tweaked block mode used by the simulated SME/SEV
//!   memory-encryption engine.
//! - [`sha256`], [`hmac`] — hashing and MACs for SEV measurements.
//! - [`x25519`] — the ECDH key agreement used by the SEV SEND/RECEIVE
//!   protocol between guest owner and firmware.
//! - [`keywrap`] — AES key wrap for the transport keys (`Kwrap` = wrapped
//!   `Ktek`/`Ktik` in the paper's §4.3.2).
//! - [`rng`] — seedable SplitMix64/Xoshiro256** generators; the whole
//!   simulation is reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use fidelius_crypto::aes::Aes128;
//!
//! let key = [0u8; 16];
//! let cipher = Aes128::new(&key);
//! let mut block = *b"attack at dawn!!";
//! let original = block;
//! cipher.encrypt_block(&mut block);
//! assert_ne!(block, original);
//! cipher.decrypt_block(&mut block);
//! assert_eq!(block, original);
//! ```

// The crate is `unsafe`-free except for the AES-NI intrinsics: with the
// `aesni` feature off, `unsafe` stays forbidden outright; with it on, it is
// denied everywhere and allowed only inside `aes_ni` (each site carries an
// explicit `#[allow(unsafe_code)]` + SAFETY comment).
#![cfg_attr(not(all(feature = "aesni", target_arch = "x86_64")), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
mod aes_bitsliced;
#[cfg(all(feature = "aesni", target_arch = "x86_64"))]
mod aes_ni;
pub mod aes_soft;
pub mod error;
pub mod hmac;
pub mod keywrap;
pub mod modes;
pub mod rng;
pub mod sha256;
pub mod x25519;

pub use error::CryptoError;

/// A 128-bit symmetric key, the size used for every SEV-related key in the
/// simulation (`Kvek`, `Ktek`, `Kblk`, …).
pub type Key128 = [u8; 16];

/// A 256-bit digest as produced by [`sha256`].
pub type Digest256 = [u8; 32];
