//! Error type shared by the crypto primitives.

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// A key had an unsupported length for the requested algorithm.
    InvalidKeyLength {
        /// Length that was supplied, in bytes.
        got: usize,
        /// Length the algorithm expects, in bytes.
        expected: usize,
    },
    /// Input was not a whole number of cipher blocks.
    InvalidBlockLength {
        /// Length that was supplied, in bytes.
        got: usize,
    },
    /// An authentication tag or integrity check did not verify.
    IntegrityFailure,
    /// A wrapped key failed its unwrap integrity check.
    UnwrapFailure,
    /// A point or scalar was not a valid X25519 input.
    InvalidPoint,
    /// An explicitly requested AES backend is not usable in this build or
    /// on this host (e.g. `AesBackend::AesNi` without the `aesni` cargo
    /// feature, or on a CPU without the AES instructions).
    BackendUnavailable {
        /// Stable name of the backend that was requested.
        backend: &'static str,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { got, expected } => {
                write!(f, "invalid key length {got}, expected {expected}")
            }
            CryptoError::InvalidBlockLength { got } => {
                write!(f, "input length {got} is not a multiple of the block size")
            }
            CryptoError::IntegrityFailure => write!(f, "integrity check failed"),
            CryptoError::UnwrapFailure => write!(f, "key unwrap integrity check failed"),
            CryptoError::InvalidPoint => write!(f, "invalid X25519 point or scalar"),
            CryptoError::BackendUnavailable { backend } => {
                write!(f, "requested AES backend `{backend}` is unavailable in this build/host")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let variants = [
            CryptoError::InvalidKeyLength { got: 3, expected: 16 },
            CryptoError::InvalidBlockLength { got: 7 },
            CryptoError::IntegrityFailure,
            CryptoError::UnwrapFailure,
            CryptoError::InvalidPoint,
            CryptoError::BackendUnavailable { backend: "aesni" },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
