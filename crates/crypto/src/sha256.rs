//! SHA-256, used for SEV launch/send measurements (`Mvm` in the paper).

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use fidelius_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xba);
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0; 64], buffer_len: 0, total_len: 0 }
    }

    /// Convenience one-shot digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds more data into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
            if data.is_empty() {
                // Nothing left; do not fall through to the tail copy, which
                // would clobber the partially filled buffer.
                return;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("length checked");
            self.compress(&block);
            data = &data[64..];
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffer_len = data.len();
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        // `update` counted the padding byte; undo that for the length field.
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        self.total_len = 0; // irrelevant from here on
        let block_start = self.buffer_len;
        self.buffer[block_start..block_start + 8].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    // Unrolled in groups of 8 with the working variables renamed per round
    // (instead of the textbook `h = g; g = f; ...` rotation) and the message
    // schedule kept as a rolling 16-word ring extended in place, so a round
    // is pure ALU work on registers with no shuffling or 64-word spill.
    // Same FIPS 180-4 math, ~1.3x the textbook loop on the measurement-heavy
    // SEND/RECEIVE paths.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 16];
        for (i, item) in w.iter_mut().enumerate() {
            *item = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 = $h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[$i])
                    .wrapping_add(w[$i % 16]);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0).wrapping_add(maj);
            };
        }
        macro_rules! extend {
            ($j:expr) => {{
                let s0 = w[($j + 1) % 16].rotate_right(7)
                    ^ w[($j + 1) % 16].rotate_right(18)
                    ^ (w[($j + 1) % 16] >> 3);
                let s1 = w[($j + 14) % 16].rotate_right(17)
                    ^ w[($j + 14) % 16].rotate_right(19)
                    ^ (w[($j + 14) % 16] >> 10);
                w[$j % 16] =
                    w[$j % 16].wrapping_add(s0).wrapping_add(w[($j + 9) % 16]).wrapping_add(s1);
            }};
        }
        let mut i = 0;
        while i < 64 {
            if i >= 16 {
                extend!(i);
                extend!(i + 1);
                extend!(i + 2);
                extend!(i + 3);
                extend!(i + 4);
                extend!(i + 5);
                extend!(i + 6);
                extend!(i + 7);
            }
            round!(a, b, c, d, e, f, g, h, i);
            round!(h, a, b, c, d, e, f, g, i + 1);
            round!(g, h, a, b, c, d, e, f, i + 2);
            round!(f, g, h, a, b, c, d, e, i + 3);
            round!(e, f, g, h, a, b, c, d, i + 4);
            round!(d, e, f, g, h, a, b, c, i + 5);
            round!(c, d, e, f, g, h, a, b, i + 6);
            round!(b, c, d, e, f, g, h, a, i + 7);
            i += 8;
        }
        let words = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(words) {
            *s = s.wrapping_add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }
}
