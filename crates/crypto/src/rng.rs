//! Deterministic pseudo-random generators.
//!
//! The entire simulation must replay identically from a seed (workload
//! generation, key generation in the simulated firmware, attack fuzzing),
//! so we use small, well-known generators instead of OS entropy:
//! SplitMix64 for seeding and Xoshiro256** for streams. For
//! cryptographic-quality derivation inside the simulated firmware there is
//! also [`CtrDrbg`], an AES-CTR generator whose block cipher runs through
//! the batched [`crate::aes::KeySchedule`] entry points — it therefore
//! inherits whichever [`crate::aes::AesBackend`] the schedule was built
//! with, fast path and constant-time path alike.

/// SplitMix64 — used to expand one `u64` seed into larger states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256** — the main stream generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds from a single `u64` via SplitMix64, per the authors'
    /// recommendation.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns an f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Returns 16 random bytes, convenient for key generation.
    pub fn next_key128(&mut self) -> [u8; 16] {
        let mut k = [0u8; 16];
        self.fill_bytes(&mut k);
        k
    }

    /// Returns 32 random bytes (nonces, ECDH seeds).
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut k = [0u8; 32];
        self.fill_bytes(&mut k);
        k
    }
}

/// A deterministic AES-128-CTR generator in the shape of SP 800-90A's
/// CTR_DRBG (no derivation function, explicit [`CtrDrbg::reseed`] instead
/// of per-call rekeying — this is a simulation substrate, not a certified
/// DRBG; determinism from the seed is the requirement).
///
/// `generate` produces the keystream through
/// [`crate::aes::KeySchedule::xor_keystream`] — the batched entry point —
/// rather than a per-block `encrypt_block` loop, so output is filled eight
/// blocks per pass on whichever host backend the schedule selected. The
/// unit tests pin the batched output bit-identical to the naive per-block
/// loop.
#[derive(Debug, Clone)]
pub struct CtrDrbg {
    cipher: crate::aes::KeySchedule,
    /// The 128-bit counter `V`, advanced once per generated block.
    counter: u128,
}

impl CtrDrbg {
    /// Seeds from 32 bytes: the first 16 become the AES key, the last 16
    /// the initial counter. Uses the process default backend.
    pub fn new(seed: &[u8; 32]) -> Self {
        Self::with_backend(seed, crate::aes::default_backend())
            .expect("default backend is always available")
    }

    /// Seeds like [`CtrDrbg::new`] but pins the AES backend.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::BackendUnavailable`] if `backend`
    /// cannot run in this build on this host.
    pub fn with_backend(
        seed: &[u8; 32],
        backend: crate::aes::AesBackend,
    ) -> Result<Self, crate::CryptoError> {
        let cipher = crate::aes::KeySchedule::with_backend(&seed[..16], backend)?;
        let counter = u128::from_be_bytes(seed[16..].try_into().expect("16 bytes"));
        Ok(CtrDrbg { cipher, counter })
    }

    /// Fills `out` with keystream and advances the counter by the number
    /// of blocks consumed (the final partial block still consumes a whole
    /// counter value, as in CTR mode).
    pub fn generate(&mut self, out: &mut [u8]) {
        out.fill(0);
        let base = self.counter;
        self.cipher
            .xor_keystream(|i| base.wrapping_add(1).wrapping_add(u128::from(i)).to_be_bytes(), out);
        let blocks = out.len().div_ceil(16) as u128;
        self.counter = base.wrapping_add(blocks);
    }

    /// Mixes 32 bytes of fresh entropy into the key and counter. This is
    /// the only operation that re-expands the key schedule (the backend
    /// pinning is preserved).
    pub fn reseed(&mut self, entropy: &[u8; 32]) {
        let mut key_v = [0u8; 32];
        self.generate(&mut key_v);
        for (k, e) in key_v.iter_mut().zip(entropy.iter()) {
            *k ^= *e;
        }
        let backend = self.cipher.backend();
        self.cipher = crate::aes::KeySchedule::with_backend(&key_v[..16], backend)
            .expect("backend was available at construction");
        self.counter = u128::from_be_bytes(key_v[16..].try_into().expect("16 bytes"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 1234567 (computed from the published
        // algorithm; serves as a regression pin).
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(first, sm2.next_u64(), "determinism");
        assert_ne!(sm.next_u64(), first);
    }

    #[test]
    fn xoshiro_deterministic_across_instances() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            assert!(r.next_bounded(13) < 13);
        }
        // All residues should be hit for a small bound.
        let mut seen = [false; 13];
        for _ in 0..10_000 {
            seen[r.next_bounded(13) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Xoshiro256::new(1).next_bounded(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(99);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Xoshiro256::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    /// The batched generate must produce exactly what the naive per-block
    /// `encrypt_block` loop would — this is the oracle that lets the DRBG
    /// ride the backend dispatch without changing output.
    #[test]
    fn drbg_batched_generate_matches_per_block_loop() {
        let seed: [u8; 32] = std::array::from_fn(|i| (i as u8).wrapping_mul(41).wrapping_add(3));
        for len in [1usize, 15, 16, 17, 100, 128, 137, 16 * 33] {
            let mut drbg = CtrDrbg::new(&seed);
            let mut batched = vec![0xEEu8; len];
            drbg.generate(&mut batched);

            // Naive CTR: encrypt V+1, V+2, ... one block at a time.
            let cipher = crate::aes::KeySchedule::new(&seed[..16]).unwrap();
            let v = u128::from_be_bytes(seed[16..].try_into().unwrap());
            let mut manual = vec![0u8; len];
            for (i, chunk) in manual.chunks_mut(16).enumerate() {
                let mut block = v.wrapping_add(1).wrapping_add(i as u128).to_be_bytes();
                cipher.encrypt_block(&mut block);
                chunk.copy_from_slice(&block[..chunk.len()]);
            }
            assert_eq!(batched, manual, "generate diverged at len {len}");
        }
    }

    #[test]
    fn drbg_is_deterministic_and_advances() {
        let seed = [0x42u8; 32];
        let mut a = CtrDrbg::new(&seed);
        let mut b = CtrDrbg::new(&seed);
        let mut out_a = [0u8; 48];
        let mut out_b = [0u8; 48];
        a.generate(&mut out_a);
        b.generate(&mut out_b);
        assert_eq!(out_a, out_b, "same seed must replay identically");
        let first = out_a;
        a.generate(&mut out_a);
        assert_ne!(out_a, first, "stream must advance between calls");
    }

    #[test]
    fn drbg_identical_across_available_backends() {
        let seed: [u8; 32] = std::array::from_fn(|i| (i as u8).wrapping_mul(7));
        let mut reference = CtrDrbg::with_backend(&seed, crate::aes::AesBackend::TTable).unwrap();
        let mut want = vec![0u8; 200];
        reference.generate(&mut want);
        for backend in crate::aes::AesBackend::ALL.into_iter().filter(|b| b.available()) {
            let mut drbg = CtrDrbg::with_backend(&seed, backend).unwrap();
            let mut got = vec![0u8; 200];
            drbg.generate(&mut got);
            assert_eq!(got, want, "DRBG output diverged on {}", backend.name());
        }
    }

    #[test]
    fn drbg_reseed_changes_stream_but_stays_deterministic() {
        let seed = [0x10u8; 32];
        let mut a = CtrDrbg::new(&seed);
        let mut b = CtrDrbg::new(&seed);
        let mut fresh = [0u8; 48];
        a.generate(&mut fresh);
        let pre_reseed = fresh;
        a.reseed(&[0x77u8; 32]);
        b.generate(&mut fresh);
        b.reseed(&[0x77u8; 32]);
        let mut out_a = [0u8; 48];
        let mut out_b = [0u8; 48];
        a.generate(&mut out_a);
        b.generate(&mut out_b);
        assert_eq!(out_a, out_b, "reseed must stay deterministic");
        assert_ne!(out_a[..], pre_reseed[..], "reseed must change the stream");
    }
}
