//! Deterministic pseudo-random generators.
//!
//! The entire simulation must replay identically from a seed (workload
//! generation, key generation in the simulated firmware, attack fuzzing),
//! so we use small, well-known generators instead of OS entropy:
//! SplitMix64 for seeding and Xoshiro256** for streams.

/// SplitMix64 — used to expand one `u64` seed into larger states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256** — the main stream generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds from a single `u64` via SplitMix64, per the authors'
    /// recommendation.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns an f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Returns 16 random bytes, convenient for key generation.
    pub fn next_key128(&mut self) -> [u8; 16] {
        let mut k = [0u8; 16];
        self.fill_bytes(&mut k);
        k
    }

    /// Returns 32 random bytes (nonces, ECDH seeds).
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut k = [0u8; 32];
        self.fill_bytes(&mut k);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 1234567 (computed from the published
        // algorithm; serves as a regression pin).
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(first, sm2.next_u64(), "determinism");
        assert_ne!(sm.next_u64(), first);
    }

    #[test]
    fn xoshiro_deterministic_across_instances() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            assert!(r.next_bounded(13) < 13);
        }
        // All residues should be hit for a small bound.
        let mut seen = [false; 13];
        for _ in 0..10_000 {
            seen[r.next_bounded(13) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Xoshiro256::new(1).next_bounded(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(99);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Xoshiro256::new(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
