//! Hardware AES via `std::arch::x86_64` — the `AesBackend::AesNi` engine.
//!
//! Compiled only with the `aesni` cargo feature on x86-64, and selected
//! only after runtime `is_x86_feature_detected!("aes")`. The round keys
//! come from the one expansion [`crate::aes::KeySchedule`] already did:
//!
//! - encryption feeds the straight schedule to `AESENC`/`AESENCLAST`;
//! - decryption feeds the existing equivalent-inverse-cipher schedule to
//!   `AESDEC`/`AESDECLAST` — the hardware round is exactly
//!   `InvShiftRows → InvSubBytes → InvMixColumns → AddRoundKey`, which is
//!   what the InvMixColumns-transformed inner keys were built for, so the
//!   same `dec` vector the T-table core uses drops straight in (applied
//!   high-to-low, with the untransformed `dec[rounds]` as the initial
//!   whitening key and `dec[0]` in the `AESDECLAST` round).
//!
//! Eight blocks are kept in flight per loop iteration: `AESENC` has a
//! multi-cycle latency but pipelines one per cycle, so independent states
//! are what turn ~4 cycles/byte into ~0.3. This mirrors the eight-state
//! interleave of the T-table core and the eight-lane batch of the
//! bitsliced core, so every backend digests the same 128-byte batches.
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! root forbids it unless this feature is on): the intrinsics require it,
//! and every call site is guarded by the construction-time CPU detection.

use std::arch::x86_64::{
    __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
    _mm_loadu_si128, _mm_setzero_si128, _mm_storeu_si128, _mm_xor_si128,
};

/// Maximum round keys for any AES key size (AES-256: 14 rounds + 1).
const MAX_RK: usize = 15;

/// Whether the host CPU exposes the AES instructions.
pub(crate) fn available() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

/// Byte-form round keys for the AES instructions, derived from the already
/// expanded schedule (no re-expansion).
#[derive(Clone)]
pub(crate) struct NiKeys {
    enc: Vec<[u8; 16]>,
    dec: Vec<[u8; 16]>,
}

impl std::fmt::Debug for NiKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("NiKeys").field("rounds", &(self.enc.len() - 1)).finish()
    }
}

impl NiKeys {
    /// Converts the column-word schedules into the 16-byte round keys the
    /// instructions consume. `enc` is the straight schedule, `dec` the
    /// equivalent-inverse-cipher schedule, both as built by
    /// [`crate::aes::KeySchedule`].
    pub(crate) fn from_words(enc: &[[u32; 4]], dec: &[[u32; 4]]) -> Self {
        let to_bytes = |words: &[[u32; 4]]| {
            words
                .iter()
                .map(|w| {
                    let mut rk = [0u8; 16];
                    for (c, word) in w.iter().enumerate() {
                        rk[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
                    }
                    rk
                })
                .collect::<Vec<_>>()
        };
        NiKeys { enc: to_bytes(enc), dec: to_bytes(dec) }
    }

    /// Encrypts consecutive 16-byte blocks in place.
    pub(crate) fn encrypt_blocks(&self, blocks: &mut [u8]) {
        debug_assert_eq!(blocks.len() % 16, 0);
        debug_assert!(available(), "NiKeys constructed without CPU support");
        // SAFETY: `NiKeys` is only constructed through
        // `KeySchedule::with_backend(_, AesBackend::AesNi)`, which checks
        // `is_x86_feature_detected!("aes")` first.
        #[allow(unsafe_code)]
        unsafe {
            encrypt_impl(&self.enc, blocks)
        }
    }

    /// Decrypts consecutive 16-byte blocks in place.
    pub(crate) fn decrypt_blocks(&self, blocks: &mut [u8]) {
        debug_assert_eq!(blocks.len() % 16, 0);
        debug_assert!(available(), "NiKeys constructed without CPU support");
        // SAFETY: as in `encrypt_blocks` — construction implies detection.
        #[allow(unsafe_code)]
        unsafe {
            decrypt_impl(&self.dec, blocks)
        }
    }
}

/// Loads the round keys into registers once per batch call.
///
/// # Safety
///
/// Caller must ensure the `aes` (and implied `sse2`) target features are
/// present at runtime.
#[allow(unsafe_code)]
#[target_feature(enable = "aes")]
unsafe fn load_keys(keys: &[[u8; 16]]) -> ([__m128i; MAX_RK], usize) {
    let mut rk = [_mm_setzero_si128(); MAX_RK];
    for (dst, src) in rk.iter_mut().zip(keys.iter()) {
        *dst = _mm_loadu_si128(src.as_ptr().cast::<__m128i>());
    }
    (rk, keys.len() - 1)
}

/// The pipelined encryption loop: eight independent states per iteration,
/// single-block tail.
///
/// # Safety
///
/// Caller must ensure the `aes` target feature is present at runtime and
/// `blocks.len() % 16 == 0`.
#[allow(unsafe_code)]
#[target_feature(enable = "aes")]
unsafe fn encrypt_impl(keys: &[[u8; 16]], blocks: &mut [u8]) {
    let (rk, rounds) = load_keys(keys);
    let mut wide = blocks.chunks_exact_mut(128);
    for chunk in &mut wide {
        let p = chunk.as_mut_ptr().cast::<__m128i>();
        let mut s = [_mm_setzero_si128(); 8];
        for (b, st) in s.iter_mut().enumerate() {
            *st = _mm_xor_si128(_mm_loadu_si128(p.add(b)), rk[0]);
        }
        for &k in &rk[1..rounds] {
            for st in s.iter_mut() {
                *st = _mm_aesenc_si128(*st, k);
            }
        }
        let last = rk[rounds];
        for (b, st) in s.iter().enumerate() {
            _mm_storeu_si128(p.add(b), _mm_aesenclast_si128(*st, last));
        }
    }
    for chunk in wide.into_remainder().chunks_exact_mut(16) {
        let p = chunk.as_mut_ptr().cast::<__m128i>();
        let mut s = _mm_xor_si128(_mm_loadu_si128(p), rk[0]);
        for &k in &rk[1..rounds] {
            s = _mm_aesenc_si128(s, k);
        }
        _mm_storeu_si128(p, _mm_aesenclast_si128(s, rk[rounds]));
    }
}

/// The pipelined decryption loop over the equivalent-inverse schedule.
///
/// # Safety
///
/// As for [`encrypt_impl`].
#[allow(unsafe_code)]
#[target_feature(enable = "aes")]
unsafe fn decrypt_impl(keys: &[[u8; 16]], blocks: &mut [u8]) {
    let (rk, rounds) = load_keys(keys);
    let mut wide = blocks.chunks_exact_mut(128);
    for chunk in &mut wide {
        let p = chunk.as_mut_ptr().cast::<__m128i>();
        let mut s = [_mm_setzero_si128(); 8];
        for (b, st) in s.iter_mut().enumerate() {
            *st = _mm_xor_si128(_mm_loadu_si128(p.add(b)), rk[rounds]);
        }
        for r in (1..rounds).rev() {
            let k = rk[r];
            for st in s.iter_mut() {
                *st = _mm_aesdec_si128(*st, k);
            }
        }
        let last = rk[0];
        for (b, st) in s.iter().enumerate() {
            _mm_storeu_si128(p.add(b), _mm_aesdeclast_si128(*st, last));
        }
    }
    for chunk in wide.into_remainder().chunks_exact_mut(16) {
        let p = chunk.as_mut_ptr().cast::<__m128i>();
        let mut s = _mm_xor_si128(_mm_loadu_si128(p), rk[rounds]);
        for r in (1..rounds).rev() {
            s = _mm_aesdec_si128(s, rk[r]);
        }
        _mm_storeu_si128(p, _mm_aesdeclast_si128(s, rk[0]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::KeySchedule;

    fn keys_for(key: &[u8]) -> NiKeys {
        let ks = KeySchedule::new(key).unwrap();
        NiKeys::from_words(ks.enc_words(), ks.dec_words())
    }

    #[test]
    fn hardware_matches_ttable_all_key_sizes() {
        if !available() {
            eprintln!("skipping: host has no AES instructions");
            return;
        }
        for key in [&[0x21u8; 16][..], &[0x5Eu8; 24][..], &[0xA3u8; 32][..]] {
            let ks = KeySchedule::with_backend(key, crate::aes::AesBackend::TTable).unwrap();
            let ni = keys_for(key);
            let mut data: Vec<u8> = (0..16 * 11).map(|i| (i as u8).wrapping_mul(13)).collect();
            let mut expect = data.clone();
            ni.encrypt_blocks(&mut data);
            ks.encrypt_blocks(&mut expect);
            assert_eq!(data, expect, "AESENC diverged for {}-byte key", key.len());
            ni.decrypt_blocks(&mut data);
            ks.decrypt_blocks(&mut expect);
            assert_eq!(data, expect, "AESDEC diverged for {}-byte key", key.len());
        }
    }
}
