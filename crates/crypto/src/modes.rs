//! Block-cipher modes of operation used across the simulated platform.
//!
//! - [`Ctr128`] — counter mode for bulk transport encryption (SEV SEND /
//!   RECEIVE snapshots).
//! - [`SectorCipher`] — a tweaked, sector-granular mode for the guest disk
//!   image encrypted under `Kblk` (paper §4.3.2/§4.3.5: "it will batch the
//!   I/O write requests and process in sector granularity").
//! - [`PaTweakCipher`] — the physical-address-tweaked block encryption
//!   performed by the AMD memory-encryption engine. AMD's SME/SEV XORs a
//!   physical-address-derived tweak around AES so that identical plaintext
//!   at different physical addresses yields different ciphertext, and
//!   ciphertext *moved* between addresses decrypts to garbage — but
//!   ciphertext *replayed in place* decrypts fine, which is exactly the
//!   replay weakness the paper's §2.2 describes and Fidelius closes.
//!
//! All three modes route bulk traffic through
//! [`crate::aes::KeySchedule::xor_keystream`] or the batched
//! `encrypt_blocks`/`decrypt_blocks` entry points so large buffers pay one
//! dispatch per 16-byte block into the T-table core and nothing else.

use crate::aes::Aes128;

/// AES-128 counter mode.
#[derive(Debug, Clone)]
pub struct Ctr128 {
    cipher: Aes128,
    nonce: u64,
}

impl Ctr128 {
    /// Creates a CTR context with a 64-bit nonce occupying the high half of
    /// the counter block.
    pub fn new(key: &[u8; 16], nonce: u64) -> Self {
        Ctr128 { cipher: Aes128::new(key), nonce }
    }

    /// Creates a CTR context around an already-expanded cipher, so callers
    /// that derive many per-stream nonces from one key (the SEV I/O
    /// transform) pay for key expansion once instead of once per call.
    pub fn from_cipher(cipher: Aes128, nonce: u64) -> Self {
        Ctr128 { cipher, nonce }
    }

    /// Encrypts or decrypts `data` starting at block offset `block_offset`.
    /// CTR is an involution, so the same call performs both directions.
    pub fn apply(&self, block_offset: u64, data: &mut [u8]) {
        Self::apply_with(&self.cipher, self.nonce, block_offset, data);
    }

    /// The keystream application behind [`Ctr128::apply`], borrowing the
    /// expanded cipher instead of owning it. Callers that derive a fresh
    /// nonce per 512-byte sector from one shared key (the SEV I/O
    /// transform) would otherwise clone the whole key schedule — two heap
    /// allocations — per sector; this is the same keystream with no
    /// context constructed at all.
    pub fn apply_with(cipher: &Aes128, nonce: u64, block_offset: u64, data: &mut [u8]) {
        let nonce = nonce.to_be_bytes();
        cipher.schedule().xor_keystream(
            |i| {
                let mut ks = [0u8; 16];
                ks[..8].copy_from_slice(&nonce);
                ks[8..].copy_from_slice(&block_offset.wrapping_add(i).to_be_bytes());
                ks
            },
            data,
        );
    }
}

/// Disk-sector encryption under `Kblk`.
///
/// Each 512-byte sector is encrypted in CTR mode keyed by the sector number,
/// so sectors can be read and written independently — the property the PV
/// block front-end needs.
#[derive(Debug, Clone)]
pub struct SectorCipher {
    cipher: Aes128,
}

/// Size of one disk sector in bytes.
pub const SECTOR_SIZE: usize = 512;

impl SectorCipher {
    /// Creates a sector cipher from the disk key `Kblk`.
    pub fn new(kblk: &[u8; 16]) -> Self {
        SectorCipher { cipher: Aes128::new(kblk) }
    }

    /// Encrypts one sector in place.
    ///
    /// # Panics
    ///
    /// Panics if `sector.len() != SECTOR_SIZE`.
    pub fn encrypt_sector(&self, sector_no: u64, sector: &mut [u8]) {
        self.apply(sector_no, sector);
    }

    /// Decrypts one sector in place (same keystream as encryption).
    ///
    /// # Panics
    ///
    /// Panics if `sector.len() != SECTOR_SIZE`.
    pub fn decrypt_sector(&self, sector_no: u64, sector: &mut [u8]) {
        self.apply(sector_no, sector);
    }

    /// Encrypts a run of consecutive sectors in place, sector `i` of the
    /// buffer being sector number `first_sector + i` on disk. Byte-identical
    /// to calling [`SectorCipher::encrypt_sector`] per 512-byte chunk; the
    /// batch entry point exists so a whole ring drain is one dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a whole number of sectors.
    pub fn encrypt_sectors(&self, first_sector: u64, data: &mut [u8]) {
        self.apply_sectors(first_sector, data);
    }

    /// Decrypts a run of consecutive sectors in place (same keystream as
    /// encryption); see [`SectorCipher::encrypt_sectors`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a whole number of sectors.
    pub fn decrypt_sectors(&self, first_sector: u64, data: &mut [u8]) {
        self.apply_sectors(first_sector, data);
    }

    fn apply_sectors(&self, first_sector: u64, data: &mut [u8]) {
        assert_eq!(data.len() % SECTOR_SIZE, 0, "run must be whole sectors");
        for (i, sector) in data.chunks_exact_mut(SECTOR_SIZE).enumerate() {
            self.apply(first_sector.wrapping_add(i as u64), sector);
        }
    }

    fn apply(&self, sector_no: u64, sector: &mut [u8]) {
        assert_eq!(sector.len(), SECTOR_SIZE, "sector must be {SECTOR_SIZE} bytes");
        let sector_be = sector_no.to_be_bytes();
        self.cipher.schedule().xor_keystream(
            |i| {
                let mut ks = [0u8; 16];
                ks[..8].copy_from_slice(&sector_be);
                ks[8..].copy_from_slice(&i.to_be_bytes());
                ks
            },
            sector,
        );
    }
}

/// Physical-address-tweaked AES, the memory-encryption engine's block mode.
#[derive(Debug, Clone)]
pub struct PaTweakCipher {
    cipher: Aes128,
}

impl PaTweakCipher {
    /// Creates the engine cipher for one key (`Kvek` of an ASID, or the SME
    /// host key).
    pub fn new(key: &[u8; 16]) -> Self {
        PaTweakCipher { cipher: Aes128::new(key) }
    }

    /// The two 64-bit halves of the tweak for physical address `pa`.
    ///
    /// A simple public diffusion of the physical block address; the real
    /// engine uses an undocumented tweak function with the same contract.
    #[inline]
    fn tweak_halves(pa: u64) -> (u64, u64) {
        let x = pa ^ pa.rotate_left(23) ^ 0x9E37_79B9_7F4A_7C15;
        (x, (!x).rotate_left(17))
    }

    #[inline]
    fn xor_tweak(pa: u64, block: &mut [u8; 16]) {
        let (lo, hi) = Self::tweak_halves(pa);
        let a = u64::from_le_bytes(block[..8].try_into().expect("8 bytes")) ^ lo;
        let b = u64::from_le_bytes(block[8..].try_into().expect("8 bytes")) ^ hi;
        block[..8].copy_from_slice(&a.to_le_bytes());
        block[8..].copy_from_slice(&b.to_le_bytes());
    }

    /// The 16-byte tweak mask `T(pa)` for physical address `pa`.
    ///
    /// The tweak is **keyless**: it depends only on the physical address.
    /// SEVurity (Wilke et al., 2020) showed the same holds for the first
    /// SEV generations — the tweak constants were recoverable from a
    /// single known plaintext/ciphertext pair — which turns the XEX
    /// construction move-malleable. With the same tweak applied before and
    /// after AES, placing `C ⊕ T(pa_src) ⊕ T(pa_dst)` at `pa_dst` decrypts
    /// to `P ⊕ T(pa_src) ⊕ T(pa_dst)`: an attacker who knows one plaintext
    /// block can inject *chosen* 16-byte plaintext anywhere. The
    /// `sevurity-tweak-inject` attack scenario exploits exactly this;
    /// exposing the mask here is the honest model of a public tweak.
    pub fn tweak_mask(pa: u64) -> [u8; 16] {
        let (lo, hi) = Self::tweak_halves(pa);
        let mut mask = [0u8; 16];
        mask[..8].copy_from_slice(&lo.to_le_bytes());
        mask[8..].copy_from_slice(&hi.to_le_bytes());
        mask
    }

    /// Encrypts one 16-byte block located at physical address `pa`.
    pub fn encrypt_block(&self, pa: u64, block: &mut [u8; 16]) {
        Self::xor_tweak(pa, block);
        self.cipher.encrypt_block(block);
        Self::xor_tweak(pa, block);
    }

    /// Decrypts one 16-byte block located at physical address `pa`.
    pub fn decrypt_block(&self, pa: u64, block: &mut [u8; 16]) {
        Self::xor_tweak(pa, block);
        self.cipher.decrypt_block(block);
        Self::xor_tweak(pa, block);
    }

    /// XORs the tweaks of [`INTERLEAVE`](crate::aes::INTERLEAVE) consecutive
    /// block addresses into a 128-byte run — the pre/post whitening pass
    /// around one interleaved AES call in the streaming paths.
    #[inline]
    fn xor_tweak_run(base_pa: u64, run: &mut [u8; crate::aes::INTERLEAVE_BYTES]) {
        for (i, chunk) in run.chunks_exact_mut(16).enumerate() {
            let block: &mut [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
            Self::xor_tweak(base_pa.wrapping_add(16 * i as u64), block);
        }
    }

    /// Encrypts consecutive 16-byte blocks in place, the block at offset
    /// `16 * i` being located at physical address `base_pa + 16 * i`. The
    /// tweak advances with the running address instead of being re-derived
    /// through a fresh call per block, and whole 8-block runs are whitened
    /// in one pass and encrypted through the interleaved round loop — this
    /// is the memory controller's streaming write path.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn encrypt_blocks(&self, base_pa: u64, data: &mut [u8]) {
        assert_eq!(data.len() % 16, 0, "streaming tweak path needs whole blocks");
        let schedule = self.cipher.schedule();
        let mut pa = base_pa;
        let mut wide = data.chunks_exact_mut(crate::aes::INTERLEAVE_BYTES);
        for chunk in &mut wide {
            let run: &mut [u8; crate::aes::INTERLEAVE_BYTES] =
                chunk.try_into().expect("chunk is INTERLEAVE_BYTES");
            Self::xor_tweak_run(pa, run);
            schedule.encrypt_blocks(run);
            Self::xor_tweak_run(pa, run);
            pa = pa.wrapping_add(crate::aes::INTERLEAVE_BYTES as u64);
        }
        for chunk in wide.into_remainder().chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
            Self::xor_tweak(pa, block);
            schedule.encrypt_block(block);
            Self::xor_tweak(pa, block);
            pa = pa.wrapping_add(16);
        }
    }

    /// Decrypts consecutive 16-byte blocks in place; see
    /// [`PaTweakCipher::encrypt_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn decrypt_blocks(&self, base_pa: u64, data: &mut [u8]) {
        assert_eq!(data.len() % 16, 0, "streaming tweak path needs whole blocks");
        let schedule = self.cipher.schedule();
        let mut pa = base_pa;
        let mut wide = data.chunks_exact_mut(crate::aes::INTERLEAVE_BYTES);
        for chunk in &mut wide {
            let run: &mut [u8; crate::aes::INTERLEAVE_BYTES] =
                chunk.try_into().expect("chunk is INTERLEAVE_BYTES");
            Self::xor_tweak_run(pa, run);
            schedule.decrypt_blocks(run);
            Self::xor_tweak_run(pa, run);
            pa = pa.wrapping_add(crate::aes::INTERLEAVE_BYTES as u64);
        }
        for chunk in wide.into_remainder().chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
            Self::xor_tweak(pa, block);
            schedule.decrypt_block(block);
            Self::xor_tweak(pa, block);
            pa = pa.wrapping_add(16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctr_roundtrip_and_offset_consistency() {
        let ctr = Ctr128::new(&[3u8; 16], 77);
        let mut data = vec![0x5Au8; 100];
        let original = data.clone();
        ctr.apply(0, &mut data);
        assert_ne!(data, original);
        ctr.apply(0, &mut data);
        assert_eq!(data, original);

        // Encrypting the tail separately with the right offset matches.
        let mut whole = original.clone();
        ctr.apply(0, &mut whole);
        let mut head = original[..32].to_vec();
        let mut tail = original[32..].to_vec();
        ctr.apply(0, &mut head);
        ctr.apply(2, &mut tail);
        assert_eq!(&whole[..32], head.as_slice());
        assert_eq!(&whole[32..], tail.as_slice());
    }

    /// The batched keystream path must produce byte-identical output to the
    /// seed implementation's per-block loop (same counter-block layout).
    #[test]
    fn ctr_matches_manual_per_block_loop() {
        let key = [3u8; 16];
        let nonce = 77u64;
        let ctr = Ctr128::new(&key, nonce);
        let mut data: Vec<u8> = (0..=254u8).collect(); // 255 bytes, partial tail
        let original = data.clone();
        ctr.apply(5, &mut data);

        let cipher = crate::aes::Aes128::new(&key);
        let mut manual = original.clone();
        let mut counter = 5u64;
        for chunk in manual.chunks_mut(16) {
            let mut ks = [0u8; 16];
            ks[..8].copy_from_slice(&nonce.to_be_bytes());
            ks[8..].copy_from_slice(&counter.to_be_bytes());
            cipher.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= *k;
            }
            counter = counter.wrapping_add(1);
        }
        assert_eq!(data, manual);
    }

    #[test]
    fn sector_cipher_roundtrip_and_position_dependence() {
        let sc = SectorCipher::new(&[0x11u8; 16]);
        let plain = [0xC3u8; SECTOR_SIZE];
        let mut s0 = plain;
        let mut s1 = plain;
        sc.encrypt_sector(0, &mut s0);
        sc.encrypt_sector(1, &mut s1);
        assert_ne!(s0, s1, "same plaintext in different sectors must differ");
        sc.decrypt_sector(0, &mut s0);
        assert_eq!(s0, plain);
    }

    /// The batched multi-sector path must equal per-sector calls — this is
    /// what keeps ciphertext byte-identical when the block front-end drains
    /// a whole ring through one dispatch.
    #[test]
    fn sector_batch_matches_per_sector() {
        let sc = SectorCipher::new(&[0x47u8; 16]);
        let plain: Vec<u8> = (0..4 * SECTOR_SIZE).map(|i| (i as u8).wrapping_mul(13)).collect();
        let mut batched = plain.clone();
        sc.encrypt_sectors(9, &mut batched);
        let mut manual = plain.clone();
        for (i, sector) in manual.chunks_exact_mut(SECTOR_SIZE).enumerate() {
            sc.encrypt_sector(9 + i as u64, sector);
        }
        assert_eq!(batched, manual);
        sc.decrypt_sectors(9, &mut batched);
        assert_eq!(batched, plain);
    }

    #[test]
    #[should_panic(expected = "whole sectors")]
    fn sector_batch_rejects_ragged_run() {
        let sc = SectorCipher::new(&[0u8; 16]);
        let mut bad = vec![0u8; SECTOR_SIZE + 1];
        sc.encrypt_sectors(0, &mut bad);
    }

    /// `from_cipher` must be indistinguishable from `new` with the same key
    /// — it only skips the redundant key expansion.
    #[test]
    fn ctr_from_cipher_matches_new() {
        let key = [0x5Du8; 16];
        let a = Ctr128::new(&key, 42);
        let b = Ctr128::from_cipher(crate::aes::Aes128::new(&key), 42);
        let mut da = vec![0xEEu8; 48];
        let mut db = da.clone();
        a.apply(3, &mut da);
        b.apply(3, &mut db);
        assert_eq!(da, db);
    }

    #[test]
    #[should_panic(expected = "sector must be")]
    fn sector_cipher_rejects_short_sector() {
        let sc = SectorCipher::new(&[0u8; 16]);
        let mut bad = [0u8; 100];
        sc.encrypt_sector(0, &mut bad);
    }

    #[test]
    fn pa_tweak_roundtrip() {
        let c = PaTweakCipher::new(&[0x22u8; 16]);
        let plain = *b"sixteen byte msg";
        let mut block = plain;
        c.encrypt_block(0x1000, &mut block);
        assert_ne!(block, plain);
        c.decrypt_block(0x1000, &mut block);
        assert_eq!(block, plain);
    }

    #[test]
    fn pa_tweak_moved_ciphertext_garbles() {
        // The property behind SEV's remap protection AND its replay
        // weakness: ciphertext is bound to its physical address.
        let c = PaTweakCipher::new(&[0x22u8; 16]);
        let plain = *b"topsecret-data!!";
        let mut at_a = plain;
        c.encrypt_block(0xA000, &mut at_a);
        // Adversary copies ciphertext from PA 0xA000 to PA 0xB000.
        let mut moved = at_a;
        c.decrypt_block(0xB000, &mut moved);
        assert_ne!(moved, plain, "moved ciphertext must not decrypt");
        // But replayed in place it decrypts fine (no freshness).
        let mut replayed = at_a;
        c.decrypt_block(0xA000, &mut replayed);
        assert_eq!(replayed, plain);
    }

    #[test]
    fn pa_tweak_adjusted_move_is_fully_predictable() {
        // The SEVurity malleability theorem: because T(pa) is public and
        // applied symmetrically around AES, a *tweak-adjusted* move is not
        // garbage — it decrypts to P ⊕ T(src) ⊕ T(dst), which the attacker
        // can compute without the key. Garbling unadjusted moves (test
        // above) is therefore NOT an integrity guarantee.
        let c = PaTweakCipher::new(&[0x22u8; 16]);
        let (src_pa, dst_pa) = (0xA000u64, 0xB000u64);
        let plain = *b"topsecret-data!!";
        let mut ct = plain;
        c.encrypt_block(src_pa, &mut ct);
        let t_src = PaTweakCipher::tweak_mask(src_pa);
        let t_dst = PaTweakCipher::tweak_mask(dst_pa);
        let mut adjusted = ct;
        for i in 0..16 {
            adjusted[i] ^= t_src[i] ^ t_dst[i];
        }
        c.decrypt_block(dst_pa, &mut adjusted);
        let mut predicted = plain;
        for i in 0..16 {
            predicted[i] ^= t_src[i] ^ t_dst[i];
        }
        assert_eq!(adjusted, predicted, "adjusted move must decrypt predictably");
        assert_ne!(adjusted, plain);
    }

    /// The streaming block path must equal per-block encryption at the same
    /// addresses — this is what keeps DRAM ciphertext byte-identical when
    /// the memory controller switches to it.
    #[test]
    fn pa_tweak_stream_matches_per_block() {
        let c = PaTweakCipher::new(&[0x31u8; 16]);
        let mut data: Vec<u8> = (0..160u8).map(|b| b.wrapping_mul(7)).collect();
        let original = data.clone();
        c.encrypt_blocks(0x2340, &mut data);
        let mut manual = original.clone();
        for (i, chunk) in manual.chunks_exact_mut(16).enumerate() {
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            c.encrypt_block(0x2340 + 16 * i as u64, block);
        }
        assert_eq!(data, manual);
        c.decrypt_blocks(0x2340, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_keys_produce_different_ciphertext() {
        let c1 = PaTweakCipher::new(&[1u8; 16]);
        let c2 = PaTweakCipher::new(&[2u8; 16]);
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt_block(0, &mut b1);
        c2.encrypt_block(0, &mut b2);
        assert_ne!(b1, b2);
    }
}
