//! AES Key Wrap (RFC 3394), used to build the paper's `Kwrap`: the wrapped
//! transport encryption/integrity keys (`Ktek`, `Ktik`) that the guest owner
//! hands to Fidelius for the retrofitted SEND/RECEIVE boot flow (§4.3.2).
//!
//! Note on batching: unlike CTR/ECB paths, the wrap loop *cannot* use the
//! batched `encrypt_blocks` entry points — RFC 3394 threads the integrity
//! register `A` through every block serially (block `i`'s input depends on
//! block `i-1`'s output), so there is never more than one block in flight.
//! The per-block `encrypt_block` calls below still dispatch to the
//! schedule's [`crate::aes::AesBackend`]; on hardware AES the single-block
//! latency is what it is. Key wrap runs once per guest boot, not per
//! sector, so this is irrelevant to throughput.

use crate::aes::Aes128;
use crate::CryptoError;

const IV: u64 = 0xA6A6_A6A6_A6A6_A6A6;

/// Wraps `plain` (a multiple of 8 bytes, at least 16) under `kek`.
///
/// Output is 8 bytes longer than the input.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidBlockLength`] if `plain` is shorter than 16
/// bytes or not a multiple of 8.
pub fn wrap(kek: &[u8; 16], plain: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if plain.len() < 16 || !plain.len().is_multiple_of(8) {
        return Err(CryptoError::InvalidBlockLength { got: plain.len() });
    }
    let n = plain.len() / 8;
    let cipher = Aes128::new(kek);
    let mut a = IV;
    let mut r: Vec<u64> = plain
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    for j in 0..6u64 {
        for (i, ri) in r.iter_mut().enumerate() {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&a.to_be_bytes());
            block[8..].copy_from_slice(&ri.to_be_bytes());
            cipher.encrypt_block(&mut block);
            let t = (n as u64) * j + (i as u64) + 1;
            a = u64::from_be_bytes(block[..8].try_into().expect("8 bytes")) ^ t;
            *ri = u64::from_be_bytes(block[8..].try_into().expect("8 bytes"));
        }
    }
    let mut out = Vec::with_capacity(8 * (n + 1));
    out.extend_from_slice(&a.to_be_bytes());
    for ri in r {
        out.extend_from_slice(&ri.to_be_bytes());
    }
    Ok(out)
}

/// Unwraps data produced by [`wrap`], verifying the integrity check value.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidBlockLength`] for malformed input and
/// [`CryptoError::UnwrapFailure`] when the integrity check fails (wrong KEK
/// or tampered ciphertext).
pub fn unwrap(kek: &[u8; 16], wrapped: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if wrapped.len() < 24 || !wrapped.len().is_multiple_of(8) {
        return Err(CryptoError::InvalidBlockLength { got: wrapped.len() });
    }
    let n = wrapped.len() / 8 - 1;
    let cipher = Aes128::new(kek);
    let mut a = u64::from_be_bytes(wrapped[..8].try_into().expect("8 bytes"));
    let mut r: Vec<u64> = wrapped[8..]
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    for j in (0..6u64).rev() {
        for i in (0..n).rev() {
            let t = (n as u64) * j + (i as u64) + 1;
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&(a ^ t).to_be_bytes());
            block[8..].copy_from_slice(&r[i].to_be_bytes());
            cipher.decrypt_block(&mut block);
            a = u64::from_be_bytes(block[..8].try_into().expect("8 bytes"));
            r[i] = u64::from_be_bytes(block[8..].try_into().expect("8 bytes"));
        }
    }
    if a != IV {
        return Err(CryptoError::UnwrapFailure);
    }
    let mut out = Vec::with_capacity(8 * n);
    for ri in r {
        out.extend_from_slice(&ri.to_be_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    // RFC 3394 §4.1: 128-bit key data with a 128-bit KEK.
    #[test]
    fn rfc3394_vector() {
        let kek: [u8; 16] = hex("000102030405060708090A0B0C0D0E0F").try_into().unwrap();
        let key_data = hex("00112233445566778899AABBCCDDEEFF");
        let wrapped = wrap(&kek, &key_data).unwrap();
        assert_eq!(wrapped, hex("1FA68B0A8112B447AEF34BD8FB5A7B829D3E862371D2CFE5"));
        let unwrapped = unwrap(&kek, &wrapped).unwrap();
        assert_eq!(unwrapped, key_data);
    }

    #[test]
    fn tamper_detected() {
        let kek = [9u8; 16];
        let mut wrapped = wrap(&kek, &[1u8; 32]).unwrap();
        wrapped[10] ^= 0x80;
        assert_eq!(unwrap(&kek, &wrapped), Err(CryptoError::UnwrapFailure));
    }

    #[test]
    fn wrong_kek_detected() {
        let wrapped = wrap(&[1u8; 16], &[7u8; 16]).unwrap();
        assert_eq!(unwrap(&[2u8; 16], &wrapped), Err(CryptoError::UnwrapFailure));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(wrap(&[0u8; 16], &[0u8; 8]).is_err());
        assert!(wrap(&[0u8; 16], &[0u8; 17]).is_err());
        assert!(unwrap(&[0u8; 16], &[0u8; 16]).is_err());
    }

    #[test]
    fn roundtrips_various_sizes() {
        let kek = [0xAB; 16];
        for blocks in 2..8 {
            let data: Vec<u8> = (0..8 * blocks).map(|i| i as u8).collect();
            let w = wrap(&kek, &data).unwrap();
            assert_eq!(w.len(), data.len() + 8);
            assert_eq!(unwrap(&kek, &w).unwrap(), data);
        }
    }
}
