//! Constant-time bitsliced AES — the `AesBackend::Bitsliced` engine.
//!
//! The T-table formulation in [`crate::aes`] is fast but performs one
//! 256-entry table load per state byte per round, *indexed by secret
//! data*. On real hardware that index leaks through the data cache: an
//! attacker sharing a cache level can recover AES keys from the access
//! pattern (the classic Osvik–Shamir–Tromer / Bernstein cache-timing
//! attacks — see THREAT_MODEL.md). This module is the branch-free,
//! table-free alternative: Käsper–Schwabe-style bitslicing, where the
//! cipher runs as a fixed sequence of AND/XOR/rotate operations whose
//! addresses and control flow never depend on key or state bytes.
//!
//! # Data layout
//!
//! Eight 16-byte blocks (128 bytes) are processed per pass. The batch is
//! *orthogonalized* into eight bit-planes, each plane packed into one
//! `u128` (two machine `u64`s): bit `8*i + q` of plane `b` holds bit `b`
//! of byte `i` of block `q`. Every AES step then becomes plane algebra:
//!
//! - **AddRoundKey** — eight plane XORs against precomputed key planes
//!   (each key byte replicated across the eight block lanes);
//! - **SubBytes** — the GF(2⁸) inversion `x⁻¹ = x²⁵⁴` computed with an
//!   Itoh–Tsujii addition chain (4 bitsliced multiplies, 7 bitsliced
//!   squarings) followed by the FIPS-197 affine transform as plane XORs.
//!   The multiply is a schoolbook carry-less product of plane vectors
//!   (64 ANDs) reduced by the AES polynomial via compile-time tables
//!   indexed only by loop constants;
//! - **ShiftRows** — a lane permutation: each row mask selects a
//!   32-lane-periodic byte group and a `u128` rotation moves it;
//! - **MixColumns** — byte rotations within each 32-lane column group
//!   plus the `xtime` plane shuffle.
//!
//! All 128 S-box evaluations of a round happen simultaneously, so the
//! per-byte cost of the fat inversion is amortized eight blocks wide.
//! It is still several times slower than the T-table core on the host —
//! that is the price of constant time, and exactly why the backend is
//! selectable rather than mandatory (the simulated *modeled* cycle costs
//! are identical either way; see DESIGN.md "Backend dispatch without
//! changing modeled cycles").
//!
//! Audit note: this module contains **no array indexing by key or state
//! bytes** — the only indices are loop counters and compile-time
//! constants. `grep` for `as usize` here and find nothing derived from
//! data.

/// Blocks per bitsliced pass (the lanes of one plane set).
pub(crate) const BATCH_BLOCKS: usize = 8;
/// Bytes per bitsliced pass.
pub(crate) const BATCH_BYTES: usize = 16 * BATCH_BLOCKS;

/// Multiply by `x` in GF(2⁸) mod the AES polynomial 0x11B (scalar form,
/// used only to build compile-time reduction tables).
const fn xtime_byte(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1B } else { 0 })
}

/// `RED[m] = x^(8+m) mod 0x11B` — how each overflow bit of a carry-less
/// product folds back into the low eight planes.
const RED: [u8; 7] = {
    let mut t = [0u8; 7];
    let mut v = 0x1Bu8; // x^8 mod 0x11B
    let mut m = 0;
    while m < 7 {
        t[m] = v;
        v = xtime_byte(v);
        m += 1;
    }
    t
};

/// `SQ[i] = x^(2i) mod 0x11B` — squaring is GF(2)-linear, so the square
/// of a plane vector is a fixed XOR pattern given by this table.
const SQ: [u8; 8] = {
    let mut t = [0u8; 8];
    let mut v = 1u8; // x^0
    let mut i = 0;
    while i < 8 {
        t[i] = v;
        v = xtime_byte(xtime_byte(v));
        i += 1;
    }
    t
};

/// Mask selecting, within every 4-byte group, the byte lanes whose index
/// satisfies `lo <= i % 4 < hi` (each byte of the state occupies eight
/// consecutive lanes; a column of the AES state is a 32-lane group).
const fn col_mask(lo: usize, hi: usize) -> u128 {
    let mut m = 0u128;
    let mut i = 0;
    while i < 16 {
        if lo <= i % 4 && i % 4 < hi {
            m |= 0xFFu128 << (8 * i);
        }
        i += 1;
    }
    m
}

/// `ROW[r]` selects the lanes of state row `r` (bytes `4c + r`).
const ROW: [u128; 4] = [col_mask(0, 1), col_mask(1, 2), col_mask(2, 3), col_mask(3, 4)];

const SWAP_CL: [u128; 3] = [
    0x55555555_55555555_55555555_55555555,
    0x33333333_33333333_33333333_33333333,
    0x0F0F0F0F_0F0F0F0F_0F0F0F0F_0F0F0F0F,
];
const SWAP_CH: [u128; 3] = [
    0xAAAAAAAA_AAAAAAAA_AAAAAAAA_AAAAAAAA,
    0xCCCCCCCC_CCCCCCCC_CCCCCCCC_CCCCCCCC,
    0xF0F0F0F0_F0F0F0F0_F0F0F0F0_F0F0F0F0,
];

/// One butterfly layer of the 8×8 bit transpose: exchanges bit `s` of
/// the word index with bit `s` of the within-byte bit index.
#[inline(always)]
fn swap_layer(q: &mut [u128; 8], level: usize, a: usize, b: usize) {
    let (cl, ch, s) = (SWAP_CL[level], SWAP_CH[level], 1u32 << level);
    let (x, y) = (q[a], q[b]);
    q[a] = (x & cl) | ((y & cl) << s);
    q[b] = ((x & ch) >> s) | (y & ch);
}

/// Orthogonalizes eight words: afterwards, bit `8i + k` of word `j`
/// holds what bit `8i + j` of word `k` held. Applied to eight
/// little-endian-loaded blocks this produces the bit-planes; it is an
/// involution (the transpose of a transpose), so the same routine
/// converts back.
#[inline]
fn ortho(q: &mut [u128; 8]) {
    swap_layer(q, 0, 0, 1);
    swap_layer(q, 0, 2, 3);
    swap_layer(q, 0, 4, 5);
    swap_layer(q, 0, 6, 7);
    swap_layer(q, 1, 0, 2);
    swap_layer(q, 1, 1, 3);
    swap_layer(q, 1, 4, 6);
    swap_layer(q, 1, 5, 7);
    swap_layer(q, 2, 0, 4);
    swap_layer(q, 2, 1, 5);
    swap_layer(q, 2, 2, 6);
    swap_layer(q, 2, 3, 7);
}

/// Packs 128 bytes (eight blocks) into eight bit-planes.
#[inline]
fn pack(bytes: &[u8; BATCH_BYTES]) -> [u128; 8] {
    let mut q = [0u128; 8];
    for (blk, w) in q.iter_mut().enumerate() {
        *w = u128::from_le_bytes(bytes[16 * blk..16 * blk + 16].try_into().expect("16 bytes"));
    }
    ortho(&mut q);
    q
}

/// Unpacks eight bit-planes back into 128 bytes.
#[inline]
fn unpack(mut q: [u128; 8], bytes: &mut [u8; BATCH_BYTES]) {
    ortho(&mut q);
    for (blk, w) in q.iter().enumerate() {
        bytes[16 * blk..16 * blk + 16].copy_from_slice(&w.to_le_bytes());
    }
}

#[inline(always)]
fn xor_planes(p: &mut [u128; 8], k: &[u128; 8]) {
    for (a, b) in p.iter_mut().zip(k.iter()) {
        *a ^= *b;
    }
}

/// Carry-less schoolbook product of two plane vectors, reduced by the
/// AES polynomial. 64 plane ANDs; the reduction pattern comes from the
/// compile-time [`RED`] table, indexed only by loop constants.
#[inline]
fn gf_mul_planes(a: &[u128; 8], b: &[u128; 8]) -> [u128; 8] {
    let mut t = [0u128; 15];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            t[i + j] ^= ai & bj;
        }
    }
    let mut out = [0u128; 8];
    out.copy_from_slice(&t[..8]);
    for (m, &red) in RED.iter().enumerate() {
        let v = t[8 + m];
        for (j, o) in out.iter_mut().enumerate() {
            if (red >> j) & 1 == 1 {
                *o ^= v;
            }
        }
    }
    out
}

/// Bitsliced squaring: GF(2)-linear, a fixed XOR pattern per output
/// plane from the compile-time [`SQ`] table.
#[inline]
fn gf_square_planes(a: &[u128; 8]) -> [u128; 8] {
    let mut out = [0u128; 8];
    for (i, &sq) in SQ.iter().enumerate() {
        for (j, o) in out.iter_mut().enumerate() {
            if (sq >> j) & 1 == 1 {
                *o ^= a[i];
            }
        }
    }
    out
}

/// Bitsliced GF(2⁸) inversion via the Itoh–Tsujii chain for `x²⁵⁴`
/// (which maps 0 to 0, exactly what the AES S-box needs): four
/// multiplies and seven squarings, all on plane vectors.
#[inline]
fn gf_inv_planes(x: &[u128; 8]) -> [u128; 8] {
    let x2 = gf_square_planes(x);
    let x3 = gf_mul_planes(&x2, x);
    let x6 = gf_square_planes(&x3);
    let x7 = gf_mul_planes(&x6, x);
    let x56 = gf_square_planes(&gf_square_planes(&gf_square_planes(&x7)));
    let x63 = gf_mul_planes(&x56, &x7);
    let x126 = gf_square_planes(&x63);
    let x127 = gf_mul_planes(&x126, x);
    gf_square_planes(&x127) // x^254 = x^(-1) for x != 0, 0 for x = 0
}

/// Bitsliced SubBytes: field inversion then the FIPS-197 affine
/// transform (`out_b = y_b ⊕ y_{b+4} ⊕ y_{b+5} ⊕ y_{b+6} ⊕ y_{b+7} ⊕ c_b`
/// with constant 0x63; adding a constant bit is a plane complement).
#[inline]
fn sub_bytes(p: &[u128; 8]) -> [u128; 8] {
    let y = gf_inv_planes(p);
    let mut out = [0u128; 8];
    for (b, o) in out.iter_mut().enumerate() {
        *o = y[b] ^ y[(b + 4) % 8] ^ y[(b + 5) % 8] ^ y[(b + 6) % 8] ^ y[(b + 7) % 8];
        if (0x63 >> b) & 1 == 1 {
            *o = !*o;
        }
    }
    out
}

/// Bitsliced InvSubBytes: the inverse affine transform
/// (`x_b = p_{b+2} ⊕ p_{b+5} ⊕ p_{b+7} ⊕ d_b` with constant 0x05), then
/// the same self-inverse field inversion.
#[inline]
fn inv_sub_bytes(p: &[u128; 8]) -> [u128; 8] {
    let mut z = [0u128; 8];
    for (b, o) in z.iter_mut().enumerate() {
        *o = p[(b + 2) % 8] ^ p[(b + 5) % 8] ^ p[(b + 7) % 8];
        if (0x05 >> b) & 1 == 1 {
            *o = !*o;
        }
    }
    gf_inv_planes(&z)
}

/// ShiftRows: row `r` (a 32-lane-periodic byte group) rotates left by
/// `r` columns, which in lane space is a rotation by `32r` bits.
#[inline]
fn shift_rows(p: &mut [u128; 8]) {
    for plane in p.iter_mut() {
        let x = *plane;
        *plane = (x & ROW[0])
            | (x & ROW[1]).rotate_right(32)
            | (x & ROW[2]).rotate_right(64)
            | (x & ROW[3]).rotate_right(96);
    }
}

/// InvShiftRows: the opposite rotation per row.
#[inline]
fn inv_shift_rows(p: &mut [u128; 8]) {
    for plane in p.iter_mut() {
        let x = *plane;
        *plane = (x & ROW[0])
            | (x & ROW[1]).rotate_left(32)
            | (x & ROW[2]).rotate_left(64)
            | (x & ROW[3]).rotate_left(96);
    }
}

/// Rotates the bytes of every column group up by `K` positions:
/// `out[r] = in[(r + K) % 4]` for each column, on every plane lane.
#[inline(always)]
fn rot_col<const K: usize>(x: u128) -> u128 {
    let keep = col_mask(0, 4 - K);
    let wrap = col_mask(4 - K, 4);
    ((x >> (8 * K)) & keep) | ((x << (32 - 8 * K)) & wrap)
}

#[inline]
fn rot_planes<const K: usize>(p: &[u128; 8]) -> [u128; 8] {
    let mut out = [0u128; 8];
    for (o, &x) in out.iter_mut().zip(p.iter()) {
        *o = rot_col::<K>(x);
    }
    out
}

/// Multiply every byte by `x` (0x02): a plane shuffle with the AES
/// polynomial's bits folded in.
#[inline]
fn xtime_planes(p: &[u128; 8]) -> [u128; 8] {
    [p[7], p[0] ^ p[7], p[1], p[2] ^ p[7], p[3] ^ p[7], p[4], p[5], p[6]]
}

/// MixColumns on planes, using
/// `new = xtime(a ⊕ rot1(a)) ⊕ rot1(a) ⊕ rot2(a) ⊕ rot3(a)`
/// (the standard 2·(a+b) + b + c + d factoring of the 2,3,1,1 row).
#[inline]
fn mix_columns(p: &[u128; 8]) -> [u128; 8] {
    let r1 = rot_planes::<1>(p);
    let r2 = rot_planes::<2>(p);
    let r3 = rot_planes::<3>(p);
    let mut t = *p;
    xor_planes(&mut t, &r1);
    let mut out = xtime_planes(&t);
    for b in 0..8 {
        out[b] ^= r1[b] ^ r2[b] ^ r3[b];
    }
    out
}

/// InvMixColumns on planes: with `rₖ = rotₖ(a)` and `s = r1 ⊕ r2 ⊕ r3`,
/// `new = 8·(a ⊕ s) ⊕ 4·(a ⊕ r2) ⊕ 2·(a ⊕ r1) ⊕ s` reproduces the
/// 14,11,13,9 coefficient row (14 = 8+4+2, 11 = 8+2+1, 13 = 8+4+1,
/// 9 = 8+1).
#[inline]
fn inv_mix_columns(p: &[u128; 8]) -> [u128; 8] {
    let r1 = rot_planes::<1>(p);
    let r2 = rot_planes::<2>(p);
    let r3 = rot_planes::<3>(p);
    let mut s = r1;
    for b in 0..8 {
        s[b] ^= r2[b] ^ r3[b];
    }
    let mut a_s = *p;
    xor_planes(&mut a_s, &s);
    let mut a_r2 = *p;
    xor_planes(&mut a_r2, &r2);
    let mut a_r1 = *p;
    xor_planes(&mut a_r1, &r1);
    let e8 = xtime_planes(&xtime_planes(&xtime_planes(&a_s)));
    let e4 = xtime_planes(&xtime_planes(&a_r2));
    let e2 = xtime_planes(&a_r1);
    let mut out = e8;
    for b in 0..8 {
        out[b] ^= e4[b] ^ e2[b] ^ s[b];
    }
    out
}

/// The bitsliced key material: one plane set per round, each key byte
/// replicated across the eight block lanes. Derived from the *already
/// expanded* encryption schedule — constructing this never re-runs key
/// expansion (the schedule is expanded once and shared across backends).
#[derive(Clone)]
pub(crate) struct BitslicedKeys {
    rk: Vec<[u128; 8]>,
    rounds: usize,
}

impl std::fmt::Debug for BitslicedKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("BitslicedKeys").field("rounds", &self.rounds).finish()
    }
}

impl BitslicedKeys {
    /// Builds key planes from the expanded encryption round keys (as
    /// big-endian column words, the layout [`crate::aes::KeySchedule`]
    /// stores). Branch-free: key bits are spread with arithmetic masks,
    /// not conditionals.
    pub(crate) fn from_enc_schedule(enc: &[[u32; 4]]) -> Self {
        let rk = enc
            .iter()
            .map(|words| {
                let mut bytes = [0u8; 16];
                for (c, w) in words.iter().enumerate() {
                    bytes[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
                }
                let mut planes = [0u128; 8];
                for (i, &kb) in bytes.iter().enumerate() {
                    for (b, plane) in planes.iter_mut().enumerate() {
                        let bit = u128::from((kb >> b) & 1);
                        *plane |= bit.wrapping_neg() & (0xFFu128 << (8 * i));
                    }
                }
                planes
            })
            .collect::<Vec<_>>();
        BitslicedKeys { rounds: rk.len() - 1, rk }
    }

    /// Encrypts one full 128-byte batch in place.
    fn encrypt_batch(&self, bytes: &mut [u8; BATCH_BYTES]) {
        let mut p = pack(bytes);
        xor_planes(&mut p, &self.rk[0]);
        for r in 1..self.rounds {
            p = sub_bytes(&p);
            shift_rows(&mut p);
            p = mix_columns(&p);
            xor_planes(&mut p, &self.rk[r]);
        }
        p = sub_bytes(&p);
        shift_rows(&mut p);
        xor_planes(&mut p, &self.rk[self.rounds]);
        unpack(p, bytes);
    }

    /// Decrypts one full 128-byte batch in place (the straight inverse
    /// cipher — bitslicing has no use for the equivalent-inverse-cipher
    /// key transform, the untransformed schedule is applied in reverse).
    fn decrypt_batch(&self, bytes: &mut [u8; BATCH_BYTES]) {
        let mut p = pack(bytes);
        xor_planes(&mut p, &self.rk[self.rounds]);
        for r in (1..self.rounds).rev() {
            inv_shift_rows(&mut p);
            p = inv_sub_bytes(&p);
            xor_planes(&mut p, &self.rk[r]);
            p = inv_mix_columns(&p);
        }
        inv_shift_rows(&mut p);
        p = inv_sub_bytes(&p);
        xor_planes(&mut p, &self.rk[0]);
        unpack(p, bytes);
    }

    /// Encrypts consecutive 16-byte blocks in place. Whole eight-block
    /// batches run directly; a shorter tail is widened into a stack
    /// scratch batch (the unused lanes encrypt padding that is thrown
    /// away), keeping even the tail on the constant-time path.
    pub(crate) fn encrypt_blocks(&self, blocks: &mut [u8]) {
        debug_assert_eq!(blocks.len() % 16, 0);
        let mut wide = blocks.chunks_exact_mut(BATCH_BYTES);
        for chunk in &mut wide {
            self.encrypt_batch(chunk.try_into().expect("chunk is BATCH_BYTES"));
        }
        let rem = wide.into_remainder();
        if !rem.is_empty() {
            let mut scratch = [0u8; BATCH_BYTES];
            scratch[..rem.len()].copy_from_slice(rem);
            self.encrypt_batch(&mut scratch);
            rem.copy_from_slice(&scratch[..rem.len()]);
        }
    }

    /// Decrypts consecutive 16-byte blocks in place; tail handling as in
    /// [`BitslicedKeys::encrypt_blocks`].
    pub(crate) fn decrypt_blocks(&self, blocks: &mut [u8]) {
        debug_assert_eq!(blocks.len() % 16, 0);
        let mut wide = blocks.chunks_exact_mut(BATCH_BYTES);
        for chunk in &mut wide {
            self.decrypt_batch(chunk.try_into().expect("chunk is BATCH_BYTES"));
        }
        let rem = wide.into_remainder();
        if !rem.is_empty() {
            let mut scratch = [0u8; BATCH_BYTES];
            scratch[..rem.len()].copy_from_slice(rem);
            self.decrypt_batch(&mut scratch);
            rem.copy_from_slice(&scratch[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive bit-by-bit packer: the readable specification the SWAPN
    /// butterfly network is checked against.
    fn pack_naive(bytes: &[u8; BATCH_BYTES]) -> [u128; 8] {
        let mut planes = [0u128; 8];
        for q in 0..8 {
            for i in 0..16 {
                let byte = bytes[16 * q + i];
                for (b, plane) in planes.iter_mut().enumerate() {
                    if (byte >> b) & 1 == 1 {
                        *plane |= 1u128 << (8 * i + q);
                    }
                }
            }
        }
        planes
    }

    fn batch_from_fn(f: impl Fn(usize) -> u8) -> [u8; BATCH_BYTES] {
        let mut b = [0u8; BATCH_BYTES];
        for (i, v) in b.iter_mut().enumerate() {
            *v = f(i);
        }
        b
    }

    #[test]
    fn ortho_matches_naive_packing_and_inverts() {
        let data = batch_from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11));
        let fast = pack(&data);
        let naive = pack_naive(&data);
        assert_eq!(fast, naive, "butterfly transpose disagrees with naive bit packing");
        let mut back = [0u8; BATCH_BYTES];
        unpack(fast, &mut back);
        assert_eq!(back, data, "pack/unpack must be an involution");
    }

    #[test]
    fn reduction_tables_match_field_math() {
        // RED[m] must equal x^(8+m) and SQ[i] must equal x^(2i), both
        // reduced mod 0x11B — recompute with the independent GF multiply
        // from the reference oracle.
        use crate::aes_soft::reference::gf_mul;
        let mut pow = 1u8;
        let mut powers = [0u8; 16];
        for p in powers.iter_mut() {
            *p = pow;
            pow = gf_mul(pow, 2);
        }
        for (m, &r) in RED.iter().enumerate() {
            assert_eq!(r, powers[8 + m], "RED[{m}]");
        }
        for (i, &s) in SQ.iter().enumerate() {
            assert_eq!(s, powers[2 * i], "SQ[{i}]");
        }
    }

    /// Every GF(2⁸) element inverted through the bitsliced chain must
    /// match the reference Fermat inversion — 256 values fit in exactly
    /// two batches.
    #[test]
    fn bitsliced_inverse_matches_reference_for_all_bytes() {
        use crate::aes_soft::reference::gf_inv;
        for half in 0..2u16 {
            let data = batch_from_fn(|i| (half * 128 + i as u16) as u8);
            let planes = pack(&data);
            let inv = gf_inv_planes(&planes);
            let mut out = [0u8; BATCH_BYTES];
            unpack(inv, &mut out);
            for (i, &v) in out.iter().enumerate() {
                let x = (half * 128 + i as u16) as u8;
                assert_eq!(v, gf_inv(x), "inverse mismatch at {x:#04x}");
            }
        }
    }

    /// The full bitsliced S-box (inversion + affine) against the
    /// reference per-byte S-box, and its inverse back.
    #[test]
    fn bitsliced_sbox_matches_reference_for_all_bytes() {
        use crate::aes_soft::reference::{inv_sub_byte, sub_byte};
        for half in 0..2u16 {
            let data = batch_from_fn(|i| (half * 128 + i as u16) as u8);
            let forward = sub_bytes(&pack(&data));
            let mut out = [0u8; BATCH_BYTES];
            unpack(forward, &mut out);
            for (i, &v) in out.iter().enumerate() {
                let x = (half * 128 + i as u16) as u8;
                assert_eq!(v, sub_byte(x), "sbox mismatch at {x:#04x}");
            }
            let backward = inv_sub_bytes(&pack(&data));
            let mut out = [0u8; BATCH_BYTES];
            unpack(backward, &mut out);
            for (i, &v) in out.iter().enumerate() {
                let x = (half * 128 + i as u16) as u8;
                assert_eq!(v, inv_sub_byte(x), "inv sbox mismatch at {x:#04x}");
            }
        }
    }

    /// ShiftRows / MixColumns plane forms against the byte-wise forms
    /// from the soft-AES module, block by block.
    #[test]
    fn bitsliced_linear_layers_match_byte_forms() {
        let data = batch_from_fn(|i| (i as u8).wrapping_mul(0x9D).wrapping_add(3));
        // ShiftRows.
        let mut p = pack(&data);
        shift_rows(&mut p);
        let mut got = [0u8; BATCH_BYTES];
        unpack(p, &mut got);
        let mut expect = data;
        for blk in expect.chunks_exact_mut(16) {
            let state: &mut [u8; 16] = blk.try_into().unwrap();
            // Byte-wise ShiftRows: row r of column c takes column c+r.
            let s = *state;
            for r in 1..4 {
                for c in 0..4 {
                    state[4 * c + r] = s[4 * ((c + r) % 4) + r];
                }
            }
        }
        assert_eq!(got, expect, "shift_rows mismatch");
        let mut p2 = pack(&got);
        inv_shift_rows(&mut p2);
        let mut back = [0u8; BATCH_BYTES];
        unpack(p2, &mut back);
        assert_eq!(back, data, "inv_shift_rows must undo shift_rows");

        // MixColumns, against the 2,3,1,1 GF row evaluated per byte.
        use crate::aes_soft::reference::gf_mul;
        let mixed = mix_columns(&pack(&data));
        let mut got = [0u8; BATCH_BYTES];
        unpack(mixed, &mut got);
        let mut expect = data;
        for blk in expect.chunks_exact_mut(16) {
            for c in 0..4 {
                let col = [blk[4 * c], blk[4 * c + 1], blk[4 * c + 2], blk[4 * c + 3]];
                for r in 0..4 {
                    let coeffs = [[2u8, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]];
                    blk[4 * c + r] = (0..4).fold(0u8, |acc, i| acc ^ gf_mul(coeffs[r][i], col[i]));
                }
            }
        }
        assert_eq!(got, expect, "mix_columns mismatch");

        let unmixed = inv_mix_columns(&mix_columns(&pack(&data)));
        let mut back = [0u8; BATCH_BYTES];
        unpack(unmixed, &mut back);
        assert_eq!(back, data, "inv_mix_columns must undo mix_columns");
    }

    #[test]
    fn bitsliced_cipher_matches_reference_all_key_sizes() {
        use crate::aes_soft::reference::RefAes128;
        let key128 = [0x3Cu8; 16];
        let ks =
            crate::aes::KeySchedule::with_backend(&key128, crate::aes::AesBackend::TTable).unwrap();
        let bits = BitslicedKeys::from_enc_schedule(ks.enc_words());
        let slow = RefAes128::new(&key128);
        let mut data = batch_from_fn(|i| (i as u8).wrapping_mul(0x41));
        let mut expect = data;
        bits.encrypt_blocks(&mut data);
        for blk in expect.chunks_exact_mut(16) {
            let block: &mut [u8; 16] = blk.try_into().unwrap();
            slow.encrypt_block(block);
        }
        assert_eq!(data, expect, "bitsliced encrypt diverged from GF-math reference");
        bits.decrypt_blocks(&mut data);
        let original = batch_from_fn(|i| (i as u8).wrapping_mul(0x41));
        assert_eq!(data, original, "bitsliced decrypt must invert encrypt");

        // 192/256-bit schedules run more rounds through the same planes.
        for key in [&[0x17u8; 24][..], &[0xD2u8; 32][..]] {
            let ks = crate::aes::KeySchedule::new(key).unwrap();
            let bits = BitslicedKeys::from_enc_schedule(ks.enc_words());
            let mut wide = batch_from_fn(|i| (i as u8).wrapping_mul(0x67));
            let mut expect = wide;
            bits.encrypt_blocks(&mut wide);
            // The T-table core is the cross-check for the long key sizes
            // (itself pinned to FIPS-197 KATs).
            for blk in expect.chunks_exact_mut(16) {
                let block: &mut [u8; 16] = blk.try_into().unwrap();
                ks.encrypt_block(block);
            }
            assert_eq!(wide, expect, "bitsliced mismatch for {}-byte key", key.len());
            bits.decrypt_blocks(&mut wide);
            assert_eq!(wide, batch_from_fn(|i| (i as u8).wrapping_mul(0x67)));
        }
    }

    #[test]
    fn ragged_tail_lanes_round_trip() {
        let ks = crate::aes::KeySchedule::new(&[0x88u8; 16]).unwrap();
        let bits = BitslicedKeys::from_enc_schedule(ks.enc_words());
        for blocks in 1..=9 {
            let mut data: Vec<u8> = (0..16 * blocks).map(|i| (i as u8).wrapping_mul(7)).collect();
            let original = data.clone();
            bits.encrypt_blocks(&mut data);
            assert_ne!(data, original);
            bits.decrypt_blocks(&mut data);
            assert_eq!(data, original, "tail round trip failed at {blocks} blocks");
        }
    }
}
