//! X25519 Diffie–Hellman (RFC 7748).
//!
//! The SEV SEND/RECEIVE protocol establishes a *master secret* between the
//! guest owner and the target platform's firmware via ECDH over each side's
//! public key and a nonce (paper §4.3.2: "only the guest owner and the
//! firmware can agree on the master secret using their private key, while
//! the hypervisor in the middle cannot guess them"). This module provides
//! that key agreement with a from-scratch Curve25519 Montgomery ladder over
//! GF(2²⁵⁵ − 19) using 51-bit limbs.

/// A field element in GF(2²⁵⁵ − 19), 5 × 51-bit limbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Fe([u64; 5]);

const MASK51: u64 = (1u64 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        // Accumulate the 256 little-endian bits into 51-bit limbs; the top
        // (256th) bit is masked off per RFC 7748.
        let mut limbs = [0u64; 5];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for &b in bytes {
            acc |= (b as u128) << acc_bits;
            acc_bits += 8;
            while acc_bits >= 51 && idx < 4 {
                limbs[idx] = (acc as u64) & MASK51;
                acc >>= 51;
                acc_bits -= 51;
                idx += 1;
            }
        }
        limbs[4] = (acc as u64) & MASK51;
        Fe(limbs)
    }

    fn to_bytes(self) -> [u8; 32] {
        let t = self.reduce_full();
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in t.0 {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = (acc & 0xFF) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        while idx < 32 {
            out[idx] = (acc & 0xFF) as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    /// Fully reduces to the canonical representative in [0, p).
    fn reduce_full(self) -> Fe {
        let mut t = self;
        t = t.carry();
        t = t.carry();
        // Conditionally subtract p = 2^255 - 19.
        for _ in 0..2 {
            let mut borrow: i128 = 0;
            let p = [0x7FFFFFFFFFFEDu64, MASK51, MASK51, MASK51, MASK51];
            let mut r = [0u64; 5];
            for i in 0..5 {
                let diff = t.0[i] as i128 - p[i] as i128 + borrow;
                if diff < 0 {
                    r[i] = (diff + (1i128 << 51)) as u64;
                    borrow = -1;
                } else {
                    r[i] = diff as u64;
                    borrow = 0;
                }
            }
            if borrow == 0 {
                t = Fe(r);
            }
        }
        t
    }

    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c;
        c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        c = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c;
        c = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c;
        c = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c;
        c = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += 19 * c;
        c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        Fe(l)
    }

    fn add(self, other: Fe) -> Fe {
        let mut r = [0u64; 5];
        for (i, v) in r.iter_mut().enumerate() {
            *v = self.0[i] + other.0[i];
        }
        Fe(r).carry()
    }

    fn sub(self, other: Fe) -> Fe {
        // self + 2p - other keeps limbs positive.
        let two_p = [
            0xFFFFFFFFFFFDAu64,
            0xFFFFFFFFFFFFE,
            0xFFFFFFFFFFFFE,
            0xFFFFFFFFFFFFE,
            0xFFFFFFFFFFFFE,
        ];
        let mut r = [0u64; 5];
        for i in 0..5 {
            r[i] = self.0[i] + two_p[i] - other.0[i];
        }
        Fe(r).carry()
    }

    fn mul(self, other: Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        let m = |x: u64, y: u64| (x as u128) * (y as u128);
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;
        let r0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let r1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let r2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        Fe::carry_wide([r0, r1, r2, r3, r4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, k: u32) -> Fe {
        let mut r = [0u128; 5];
        for (i, v) in r.iter_mut().enumerate() {
            *v = (self.0[i] as u128) * (k as u128);
        }
        Fe::carry_wide(r)
    }

    fn carry_wide(r: [u128; 5]) -> Fe {
        let mut l = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = r[i] + carry;
            l[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        // Fold the final carry back with ×19.
        let mut c = carry * 19;
        let mut i = 0;
        while c > 0 {
            let v = l[i] as u128 + c;
            l[i] = (v as u64) & MASK51;
            c = v >> 51;
            i = (i + 1) % 5;
            if i == 0 {
                c *= 19;
            }
        }
        Fe(l).carry()
    }

    /// Inversion by Fermat: self^(p−2).
    fn invert(self) -> Fe {
        // Exponent p-2 = 2^255 - 21, little-endian bytes.
        let mut exp = [0xFFu8; 32];
        exp[0] = 0xEB;
        exp[31] = 0x7F;
        let mut result = Fe::ONE;
        let mut base = self;
        for byte in exp {
            let mut b = byte;
            for _ in 0..8 {
                if b & 1 != 0 {
                    result = result.mul(base);
                }
                base = base.square();
                b >>= 1;
            }
        }
        result
    }
}

fn cswap(swap: bool, a: &mut Fe, b: &mut Fe) {
    if swap {
        std::mem::swap(a, b);
    }
}

/// Raw X25519 scalar multiplication: `scalar * u`.
///
/// The scalar is clamped per RFC 7748 before use.
pub fn scalar_mult(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let mut k = *scalar;
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;

    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = false;

    for t in (0..255usize).rev() {
        let kt = (k[t / 8] >> (t % 8)) & 1 == 1;
        swap ^= kt;
        cswap(swap, &mut x2, &mut x3);
        cswap(swap, &mut z2, &mut z3);
        swap = kt;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    cswap(swap, &mut x2, &mut x3);
    cswap(swap, &mut z2, &mut z3);

    x2.mul(z2.invert()).to_bytes()
}

/// The curve's base point u = 9.
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Derives the public key for a private scalar.
pub fn public_key(private: &[u8; 32]) -> [u8; 32] {
    scalar_mult(private, &BASE_POINT)
}

/// Computes the shared secret between `our_private` and `their_public`.
pub fn shared_secret(our_private: &[u8; 32], their_public: &[u8; 32]) -> [u8; 32] {
    scalar_mult(our_private, their_public)
}

/// An ECDH keypair, the "origin's public ECDH key" of the SEV metadata.
#[derive(Clone)]
pub struct KeyPair {
    private: [u8; 32],
    public: [u8; 32],
}

impl std::fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyPair").field("public", &self.public).finish_non_exhaustive()
    }
}

impl KeyPair {
    /// Builds a keypair from 32 bytes of seed material.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let public = public_key(&seed);
        KeyPair { private: seed, public }
    }

    /// The public half, safe to publish.
    pub fn public(&self) -> &[u8; 32] {
        &self.public
    }

    /// Computes the shared secret with a peer's public key.
    pub fn agree(&self, their_public: &[u8; 32]) -> [u8; 32] {
        shared_secret(&self.private, their_public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    // RFC 7748 §5.2 vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = hex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = hex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let expected = hex32("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(scalar_mult(&scalar, &u), expected);
    }

    // RFC 7748 §5.2 vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = hex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = hex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let expected = hex32("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        assert_eq!(scalar_mult(&scalar, &u), expected);
    }

    // RFC 7748 §6.1 Diffie-Hellman.
    #[test]
    fn rfc7748_dh() {
        let alice_priv = hex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = hex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            alice_pub,
            hex32("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            bob_pub,
            hex32("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let shared = hex32("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
        assert_eq!(shared_secret(&alice_priv, &bob_pub), shared);
        assert_eq!(shared_secret(&bob_priv, &alice_pub), shared);
    }

    // RFC 7748 §5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let k = hex32("0900000000000000000000000000000000000000000000000000000000000000");
        let out = scalar_mult(&k, &k);
        assert_eq!(out, hex32("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"));
    }

    #[test]
    fn keypair_agreement_symmetry() {
        let a = KeyPair::from_seed([1u8; 32]);
        let b = KeyPair::from_seed([2u8; 32]);
        assert_eq!(a.agree(b.public()), b.agree(a.public()));
        let c = KeyPair::from_seed([3u8; 32]);
        assert_ne!(a.agree(b.public()), a.agree(c.public()));
    }

    #[test]
    fn debug_does_not_leak_private() {
        let kp = KeyPair::from_seed([0x42u8; 32]);
        let s = format!("{kp:?}");
        assert!(s.contains("public"));
        assert!(!s.contains("private: [66"));
    }

    #[test]
    fn field_roundtrip_bytes() {
        for i in 0..32 {
            let mut bytes = [0u8; 32];
            bytes[i] = 0xA7;
            bytes[31] &= 0x7F;
            let fe = Fe::from_bytes(&bytes);
            assert_eq!(fe.to_bytes(), bytes, "roundtrip failed at byte {i}");
        }
    }
}
