//! Table-based AES (the simulation's "AES-NI" fast path).
//!
//! This is a constant-table implementation of FIPS-197 supporting 128-,
//! 192- and 256-bit keys. In the Fidelius model it stands in for hardware
//! AES:
//!
//! - the guest front-end driver uses it for `Kblk` disk encryption
//!   ("AES-NI based I/O protection", paper §4.3.5);
//! - the simulated memory-encryption engine
//!   (`fidelius-hw::memctrl`) uses it for the per-ASID `Kvek` / SME key.
//!
//! Because every simulated DRAM access funnels through this cipher, it is
//! the hottest host-wall-clock code in the whole repository. The round
//! function therefore uses the classic four-table ("T-table") formulation:
//! SubBytes, ShiftRows and MixColumns collapse into four 256-entry `u32`
//! lookups per column, all precomputed at compile time by `const fn`s from
//! the same GF(2⁸) math the byte-wise form would evaluate per access.
//! Decryption uses the equivalent inverse cipher with an
//! InvMixColumns-transformed key schedule. The modeled *cycle* cost of
//! encryption is charged by `fidelius-hw::cycles` and is unaffected by any
//! of this — these tables only buy host throughput.
//!
//! The deliberately naive sibling lives in [`crate::aes_soft`].

/// The AES S-box, computed at compile time from the GF(2⁸) inverse plus the
/// FIPS-197 affine transform.
pub const SBOX: [u8; 256] = build_sbox();

/// The inverse AES S-box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox();

/// Encryption T-tables: `TE[j][x]` is the 32-bit column contribution of
/// input byte `x` arriving via ShiftRows lane `j`, with SubBytes and
/// MixColumns folded in (row 0 in the most-significant byte).
const TE: [[u32; 256]; 4] = build_te();

/// Decryption T-tables for the equivalent inverse cipher (InvSubBytes and
/// InvMixColumns folded in).
const TD: [[u32; 256]; 4] = build_td();

const fn build_sbox() -> [u8; 256] {
    // Walk the multiplicative group of GF(2^8) with generator 3: p runs
    // through all non-zero elements while q runs through their inverses.
    let mut sbox = [0u8; 256];
    sbox[0] = 0x63;
    let mut p: u8 = 1;
    let mut q: u8 = 1;
    loop {
        // p := p * 3
        p = p ^ (p << 1) ^ (if p & 0x80 != 0 { 0x1B } else { 0 });
        // q := q / 3
        q ^= q << 1;
        q ^= q << 2;
        q ^= q << 4;
        if q & 0x80 != 0 {
            q ^= 0x09;
        }
        let x = q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4);
        sbox[p as usize] = x ^ 0x63;
        if p == 1 {
            break;
        }
    }
    sbox
}

const fn build_inv_sbox() -> [u8; 256] {
    let sbox = build_sbox();
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const fn build_te() -> [[u32; 256]; 4] {
    let mut te = [[0u32; 256]; 4];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        // MixColumns column for a byte entering in row 0: [2s, s, s, 3s].
        let t0 = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        te[0][i] = t0;
        te[1][i] = t0.rotate_right(8);
        te[2][i] = t0.rotate_right(16);
        te[3][i] = t0.rotate_right(24);
        i += 1;
    }
    te
}

const fn build_td() -> [[u32; 256]; 4] {
    let mut td = [[0u32; 256]; 4];
    let mut i = 0usize;
    while i < 256 {
        let s = INV_SBOX[i];
        // InvMixColumns column for a byte entering in row 0:
        // [14s, 9s, 13s, 11s].
        let t0 = ((gmul(s, 14) as u32) << 24)
            | ((gmul(s, 9) as u32) << 16)
            | ((gmul(s, 13) as u32) << 8)
            | (gmul(s, 11) as u32);
        td[0][i] = t0;
        td[1][i] = t0.rotate_right(8);
        td[2][i] = t0.rotate_right(16);
        td[3][i] = t0.rotate_right(24);
        i += 1;
    }
    td
}

/// Multiply by 2 in GF(2⁸) with the AES reduction polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1B } else { 0 })
}

/// General GF(2⁸) multiplication (used to build the decryption tables and
/// the transformed key schedule).
#[inline]
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    acc
}

const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// Blocks processed per iteration of the interleaved round loop.
///
/// Eight independent states is enough to cover the latency of the T-table
/// loads on current cores without spilling so much state that the win
/// evaporates; the batched entry points fall back to the single-block loop
/// for any tail shorter than this.
pub const INTERLEAVE: usize = 8;

/// Bytes covered by one interleaved step.
pub const INTERLEAVE_BYTES: usize = 16 * INTERLEAVE;

/// Loads a 16-byte block into column words and applies the first round key.
#[inline(always)]
fn load_state(block: &[u8], k: &[u32; 4]) -> [u32; 4] {
    [
        u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ k[0],
        u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ k[1],
        u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ k[2],
        u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ k[3],
    ]
}

/// Stores column words back into a 16-byte block.
#[inline(always)]
fn store_state(w: &[u32; 4], block: &mut [u8]) {
    for c in 0..4 {
        block[4 * c..4 * c + 4].copy_from_slice(&w[c].to_be_bytes());
    }
}

/// One inner encryption round: four T-table lookups per column.
#[inline(always)]
fn enc_round(w: &[u32; 4], k: &[u32; 4]) -> [u32; 4] {
    [
        TE[0][(w[0] >> 24) as usize]
            ^ TE[1][(w[1] >> 16) as usize & 0xFF]
            ^ TE[2][(w[2] >> 8) as usize & 0xFF]
            ^ TE[3][w[3] as usize & 0xFF]
            ^ k[0],
        TE[0][(w[1] >> 24) as usize]
            ^ TE[1][(w[2] >> 16) as usize & 0xFF]
            ^ TE[2][(w[3] >> 8) as usize & 0xFF]
            ^ TE[3][w[0] as usize & 0xFF]
            ^ k[1],
        TE[0][(w[2] >> 24) as usize]
            ^ TE[1][(w[3] >> 16) as usize & 0xFF]
            ^ TE[2][(w[0] >> 8) as usize & 0xFF]
            ^ TE[3][w[1] as usize & 0xFF]
            ^ k[2],
        TE[0][(w[3] >> 24) as usize]
            ^ TE[1][(w[0] >> 16) as usize & 0xFF]
            ^ TE[2][(w[1] >> 8) as usize & 0xFF]
            ^ TE[3][w[2] as usize & 0xFF]
            ^ k[3],
    ]
}

/// Final encryption round: SubBytes + ShiftRows, no MixColumns.
#[inline(always)]
fn enc_last(w: &[u32; 4], k: &[u32; 4]) -> [u32; 4] {
    let mut out = [0u32; 4];
    for c in 0..4 {
        out[c] = (((SBOX[(w[c] >> 24) as usize] as u32) << 24)
            | ((SBOX[(w[(c + 1) % 4] >> 16) as usize & 0xFF] as u32) << 16)
            | ((SBOX[(w[(c + 2) % 4] >> 8) as usize & 0xFF] as u32) << 8)
            | (SBOX[w[(c + 3) % 4] as usize & 0xFF] as u32))
            ^ k[c];
    }
    out
}

/// One inner decryption round of the equivalent inverse cipher.
#[inline(always)]
fn dec_round(w: &[u32; 4], k: &[u32; 4]) -> [u32; 4] {
    [
        TD[0][(w[0] >> 24) as usize]
            ^ TD[1][(w[3] >> 16) as usize & 0xFF]
            ^ TD[2][(w[2] >> 8) as usize & 0xFF]
            ^ TD[3][w[1] as usize & 0xFF]
            ^ k[0],
        TD[0][(w[1] >> 24) as usize]
            ^ TD[1][(w[0] >> 16) as usize & 0xFF]
            ^ TD[2][(w[3] >> 8) as usize & 0xFF]
            ^ TD[3][w[2] as usize & 0xFF]
            ^ k[1],
        TD[0][(w[2] >> 24) as usize]
            ^ TD[1][(w[1] >> 16) as usize & 0xFF]
            ^ TD[2][(w[0] >> 8) as usize & 0xFF]
            ^ TD[3][w[3] as usize & 0xFF]
            ^ k[2],
        TD[0][(w[3] >> 24) as usize]
            ^ TD[1][(w[2] >> 16) as usize & 0xFF]
            ^ TD[2][(w[1] >> 8) as usize & 0xFF]
            ^ TD[3][w[0] as usize & 0xFF]
            ^ k[3],
    ]
}

/// Final decryption round: InvShiftRows + InvSubBytes.
#[inline(always)]
fn dec_last(w: &[u32; 4], k: &[u32; 4]) -> [u32; 4] {
    let mut out = [0u32; 4];
    for c in 0..4 {
        out[c] = (((INV_SBOX[(w[c] >> 24) as usize] as u32) << 24)
            | ((INV_SBOX[(w[(c + 3) % 4] >> 16) as usize & 0xFF] as u32) << 16)
            | ((INV_SBOX[(w[(c + 2) % 4] >> 8) as usize & 0xFF] as u32) << 8)
            | (INV_SBOX[w[(c + 1) % 4] as usize & 0xFF] as u32))
            ^ k[c];
    }
    out
}

/// One 16-byte round key as four big-endian column words.
#[inline]
fn rk_words(rk: &[u8; 16]) -> [u32; 4] {
    [
        u32::from_be_bytes([rk[0], rk[1], rk[2], rk[3]]),
        u32::from_be_bytes([rk[4], rk[5], rk[6], rk[7]]),
        u32::from_be_bytes([rk[8], rk[9], rk[10], rk[11]]),
        u32::from_be_bytes([rk[12], rk[13], rk[14], rk[15]]),
    ]
}

/// InvMixColumns over a 16-byte round key, for the equivalent inverse
/// cipher's transformed schedule.
fn inv_mix_columns_bytes(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

/// Host AES engine behind a [`KeySchedule`].
///
/// The backend is chosen **once at schedule construction** and dispatched
/// by a plain enum match at each batched entry point — zero per-block
/// overhead, no function pointers to defeat inlining. Every backend is
/// pinned bit-identical to the `aes_soft::reference` GF-math oracle, so
/// which one runs is invisible to everything downstream: ciphertext bytes,
/// artifacts and the *modeled* cycle costs (charged by `fidelius-hw::cycles`)
/// are all unchanged. Selection only moves host wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AesBackend {
    /// 8-way interleaved T-table core: the portable default. Fast, but its
    /// table loads are indexed by secret state bytes (a cache-timing
    /// side channel on real silicon — see THREAT_MODEL.md).
    TTable,
    /// Constant-time bitsliced core (`aes_bitsliced` module): no tables,
    /// no secret-dependent loads or branches; slower than the T-tables.
    Bitsliced,
    /// Hardware AES instructions via `std::arch::x86_64`. Requires the
    /// `aesni` cargo feature *and* runtime `is_x86_feature_detected!("aes")`.
    AesNi,
}

impl AesBackend {
    /// Every backend variant, in preference order for sweeps.
    pub const ALL: [AesBackend; 3] = [AesBackend::TTable, AesBackend::Bitsliced, AesBackend::AesNi];

    /// Stable lowercase name, matching the `FIDELIUS_AES_BACKEND` values.
    pub fn name(self) -> &'static str {
        match self {
            AesBackend::TTable => "ttable",
            AesBackend::Bitsliced => "bitsliced",
            AesBackend::AesNi => "aesni",
        }
    }

    /// Parses a `FIDELIUS_AES_BACKEND` value.
    pub fn parse(s: &str) -> Option<AesBackend> {
        match s {
            "ttable" => Some(AesBackend::TTable),
            "bitsliced" => Some(AesBackend::Bitsliced),
            "aesni" => Some(AesBackend::AesNi),
            _ => None,
        }
    }

    /// Whether this backend can run in this build on this host.
    pub fn available(self) -> bool {
        match self {
            AesBackend::TTable | AesBackend::Bitsliced => true,
            #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
            AesBackend::AesNi => crate::aes_ni::available(),
            #[cfg(not(all(feature = "aesni", target_arch = "x86_64")))]
            AesBackend::AesNi => false,
        }
    }
}

/// The backend forced by `FIDELIUS_AES_BACKEND`, if any. Read once and
/// cached; an unknown or unavailable value aborts loudly rather than
/// silently falling back, because a forced backend exists precisely so CI
/// legs test what they claim to test.
fn forced_backend() -> Option<AesBackend> {
    static FORCED: std::sync::OnceLock<Option<AesBackend>> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        let raw = std::env::var("FIDELIUS_AES_BACKEND").ok()?;
        if raw.is_empty() {
            return None;
        }
        let backend = AesBackend::parse(&raw).unwrap_or_else(|| {
            panic!(
                "FIDELIUS_AES_BACKEND={raw:?} is not a known backend \
                 (expected one of: ttable, bitsliced, aesni)"
            )
        });
        assert!(
            backend.available(),
            "FIDELIUS_AES_BACKEND={} was forced but that backend is unavailable \
             (aesni needs the `aesni` cargo feature and a CPU with AES instructions)",
            backend.name(),
        );
        Some(backend)
    })
}

/// The backend new [`KeySchedule`]s use when none is requested explicitly:
/// the `FIDELIUS_AES_BACKEND` override if set, otherwise AES-NI when it is
/// compiled in and detected, otherwise the portable T-table core. The
/// constant-time bitsliced core is never auto-selected — it is opt-in for
/// callers (or hosts) that value the side-channel guarantee over speed.
pub fn default_backend() -> AesBackend {
    if let Some(forced) = forced_backend() {
        return forced;
    }
    if AesBackend::AesNi.available() {
        AesBackend::AesNi
    } else {
        AesBackend::TTable
    }
}

/// Process-wide count of key-schedule expansions, for audit tests.
static KEY_EXPANSIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Process-wide count of [`KeySchedule`] clones, for audit tests.
static SCHEDULE_CLONES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of key expansions this process has performed. Steady-state
/// streaming (per-sector CTR, memctrl bursts) must not grow this — the
/// audit test in `tests/key_expansion_audit.rs` pins that.
pub fn key_expansions() -> u64 {
    KEY_EXPANSIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Number of [`KeySchedule`] clones this process has performed (cheaper
/// than an expansion but still an allocation — also pinned by the audit
/// test).
pub fn schedule_clones() -> u64 {
    SCHEDULE_CLONES.load(std::sync::atomic::Ordering::Relaxed)
}

/// An expanded AES key schedule for any of the three standard key sizes.
///
/// Prefer the typed wrappers [`Aes128`] and [`Aes256`] in new code; the raw
/// schedule is exposed for the few places (e.g. the memory controller) that
/// select a key size at runtime.
///
/// The key is expanded exactly once; backend-specific key forms (bitsliced
/// planes, AES-NI byte keys) are derived from that single expansion at
/// construction and shared for the schedule's lifetime.
pub struct KeySchedule {
    /// Encryption round keys as column words.
    enc: Vec<[u32; 4]>,
    /// Equivalent-inverse-cipher round keys (InvMixColumns applied to the
    /// inner rounds), indexed like `enc`.
    dec: Vec<[u32; 4]>,
    rounds: usize,
    /// Engine chosen at construction; dispatched per batch, never per block.
    backend: AesBackend,
    /// Bitsliced key planes, present iff `backend == Bitsliced`.
    bitsliced: Option<crate::aes_bitsliced::BitslicedKeys>,
    /// Byte-form round keys for the AES instructions, present iff
    /// `backend == AesNi`.
    #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
    ni: Option<crate::aes_ni::NiKeys>,
}

impl Clone for KeySchedule {
    fn clone(&self) -> Self {
        SCHEDULE_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        KeySchedule {
            enc: self.enc.clone(),
            dec: self.dec.clone(),
            rounds: self.rounds,
            backend: self.backend,
            bitsliced: self.bitsliced.clone(),
            #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
            ni: self.ni.clone(),
        }
    }
}

impl std::fmt::Debug for KeySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("KeySchedule").field("rounds", &self.rounds).finish()
    }
}

impl KeySchedule {
    /// Expands `key` (16, 24 or 32 bytes) into round keys, using the
    /// process [`default_backend`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidKeyLength`] for any other length.
    pub fn new(key: &[u8]) -> Result<Self, crate::CryptoError> {
        // `default_backend` only ever returns an available backend, so this
        // cannot fail with `BackendUnavailable`.
        Self::with_backend(key, default_backend())
    }

    /// Expands `key` and pins the schedule to an explicit `backend`.
    ///
    /// The expansion runs once; the backend's key form (bitsliced planes,
    /// AES-NI byte keys) is derived from it rather than re-expanding.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidKeyLength`] for a bad key
    /// length, or [`crate::CryptoError::BackendUnavailable`] if `backend`
    /// cannot run in this build on this host.
    pub fn with_backend(key: &[u8], backend: AesBackend) -> Result<Self, crate::CryptoError> {
        if !backend.available() {
            return Err(crate::CryptoError::BackendUnavailable { backend: backend.name() });
        }
        let mut ks = Self::expand(key)?;
        ks.backend = backend;
        match backend {
            AesBackend::TTable => {}
            AesBackend::Bitsliced => {
                ks.bitsliced =
                    Some(crate::aes_bitsliced::BitslicedKeys::from_enc_schedule(ks.enc_words()));
            }
            AesBackend::AesNi => {
                #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
                {
                    ks.ni = Some(crate::aes_ni::NiKeys::from_words(ks.enc_words(), ks.dec_words()));
                }
            }
        }
        Ok(ks)
    }

    /// The raw key expansion: the only place round keys are computed.
    fn expand(key: &[u8]) -> Result<Self, crate::CryptoError> {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            24 => (6, 12),
            32 => (8, 14),
            other => return Err(crate::CryptoError::InvalidKeyLength { got: other, expected: 16 }),
        };
        let nwords = 4 * (rounds + 1);
        let mut w = vec![[0u8; 4]; nwords];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut enc = Vec::with_capacity(rounds + 1);
        let mut dec = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            enc.push(rk_words(&rk));
            if r > 0 && r < rounds {
                inv_mix_columns_bytes(&mut rk);
            }
            dec.push(rk_words(&rk));
        }
        KEY_EXPANSIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(KeySchedule {
            enc,
            dec,
            rounds,
            backend: AesBackend::TTable,
            bitsliced: None,
            #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
            ni: None,
        })
    }

    /// Number of AES rounds for this key size (10, 12 or 14).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The host engine this schedule was pinned to at construction.
    pub fn backend(&self) -> AesBackend {
        self.backend
    }

    /// The expanded encryption round keys as big-endian column words (for
    /// sibling backend modules deriving their key forms).
    pub(crate) fn enc_words(&self) -> &[[u32; 4]] {
        &self.enc
    }

    /// The equivalent-inverse-cipher round keys as big-endian column words.
    #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
    pub(crate) fn dec_words(&self) -> &[[u32; 4]] {
        &self.dec
    }

    /// Encrypts one 16-byte block in place. Dispatches to the schedule's
    /// backend even for a single block, so the constant-time guarantee of
    /// [`AesBackend::Bitsliced`] holds on every path.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        match self.backend {
            AesBackend::TTable => self.ttable_encrypt_block(block),
            _ => self.encrypt_batch_dispatch(block.as_mut_slice()),
        }
    }

    /// Decrypts one 16-byte block in place (backend-dispatched like
    /// [`KeySchedule::encrypt_block`]).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        match self.backend {
            AesBackend::TTable => self.ttable_decrypt_block(block),
            _ => self.decrypt_batch_dispatch(block.as_mut_slice()),
        }
    }

    /// The single-block T-table path.
    #[inline]
    fn ttable_encrypt_block(&self, block: &mut [u8; 16]) {
        let mut w = load_state(block, &self.enc[0]);
        for r in 1..self.rounds {
            w = enc_round(&w, &self.enc[r]);
        }
        w = enc_last(&w, &self.enc[self.rounds]);
        store_state(&w, block);
    }

    /// The single-block equivalent-inverse-cipher T-table path.
    #[inline]
    fn ttable_decrypt_block(&self, block: &mut [u8; 16]) {
        let mut w = load_state(block, &self.dec[self.rounds]);
        for r in (1..self.rounds).rev() {
            w = dec_round(&w, &self.dec[r]);
        }
        // Final round key 0 is untransformed.
        w = dec_last(&w, &self.dec[0]);
        store_state(&w, block);
    }

    /// Encrypts [`INTERLEAVE`] consecutive blocks with the round loop
    /// interleaved across all eight states: each round applies the T-table
    /// step to every block before advancing, so the eight independent
    /// dependency chains cover the table-load latency that serializes the
    /// single-block path. Produces exactly the bytes eight
    /// [`KeySchedule::encrypt_block`] calls would.
    #[inline]
    fn encrypt8(&self, blocks: &mut [u8; INTERLEAVE_BYTES]) {
        let k0 = &self.enc[0];
        let mut s = [[0u32; 4]; INTERLEAVE];
        for (b, st) in s.iter_mut().enumerate() {
            *st = load_state(&blocks[16 * b..16 * b + 16], k0);
        }
        for r in 1..self.rounds {
            let k = &self.enc[r];
            for st in s.iter_mut() {
                *st = enc_round(st, k);
            }
        }
        let k = &self.enc[self.rounds];
        for (b, st) in s.iter().enumerate() {
            let w = enc_last(st, k);
            store_state(&w, &mut blocks[16 * b..16 * b + 16]);
        }
    }

    /// Decrypts [`INTERLEAVE`] consecutive blocks, interleaved like
    /// [`KeySchedule::encrypt8`].
    #[inline]
    fn decrypt8(&self, blocks: &mut [u8; INTERLEAVE_BYTES]) {
        let kn = &self.dec[self.rounds];
        let mut s = [[0u32; 4]; INTERLEAVE];
        for (b, st) in s.iter_mut().enumerate() {
            *st = load_state(&blocks[16 * b..16 * b + 16], kn);
        }
        for r in (1..self.rounds).rev() {
            let k = &self.dec[r];
            for st in s.iter_mut() {
                *st = dec_round(st, k);
            }
        }
        let k = &self.dec[0];
        for (b, st) in s.iter().enumerate() {
            let w = dec_last(st, k);
            store_state(&w, &mut blocks[16 * b..16 * b + 16]);
        }
    }

    /// Encrypts a run of consecutive 16-byte blocks in place (ECB over the
    /// slice) — the batched entry point the streaming memory-controller and
    /// mode implementations use to avoid per-block dispatch. Runs of
    /// [`INTERLEAVE`] blocks go through the interleaved round loop; the tail
    /// falls back to the single-block path.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len()` is not a multiple of 16.
    pub fn encrypt_blocks(&self, blocks: &mut [u8]) {
        assert_eq!(blocks.len() % 16, 0, "encrypt_blocks needs whole 16-byte blocks");
        self.encrypt_batch_dispatch(blocks);
    }

    /// Decrypts a run of consecutive 16-byte blocks in place.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len()` is not a multiple of 16.
    pub fn decrypt_blocks(&self, blocks: &mut [u8]) {
        assert_eq!(blocks.len() % 16, 0, "decrypt_blocks needs whole 16-byte blocks");
        self.decrypt_batch_dispatch(blocks);
    }

    /// Backend dispatch for a whole-block run (callers guarantee `% 16`).
    /// One match per batch, not per block.
    #[inline]
    fn encrypt_batch_dispatch(&self, blocks: &mut [u8]) {
        match self.backend {
            AesBackend::TTable => {
                let mut wide = blocks.chunks_exact_mut(INTERLEAVE_BYTES);
                for chunk in &mut wide {
                    self.encrypt8(chunk.try_into().expect("chunk is INTERLEAVE_BYTES"));
                }
                for chunk in wide.into_remainder().chunks_exact_mut(16) {
                    let block: &mut [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
                    self.ttable_encrypt_block(block);
                }
            }
            AesBackend::Bitsliced => {
                self.bitsliced
                    .as_ref()
                    .expect("bitsliced keys built at construction")
                    .encrypt_blocks(blocks);
            }
            AesBackend::AesNi => {
                #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
                self.ni.as_ref().expect("aesni keys built at construction").encrypt_blocks(blocks);
                #[cfg(not(all(feature = "aesni", target_arch = "x86_64")))]
                unreachable!("AesNi schedules cannot be constructed without the aesni feature");
            }
        }
    }

    /// Backend dispatch for whole-block decryption (callers guarantee `% 16`).
    #[inline]
    fn decrypt_batch_dispatch(&self, blocks: &mut [u8]) {
        match self.backend {
            AesBackend::TTable => {
                let mut wide = blocks.chunks_exact_mut(INTERLEAVE_BYTES);
                for chunk in &mut wide {
                    self.decrypt8(chunk.try_into().expect("chunk is INTERLEAVE_BYTES"));
                }
                for chunk in wide.into_remainder().chunks_exact_mut(16) {
                    let block: &mut [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
                    self.ttable_decrypt_block(block);
                }
            }
            AesBackend::Bitsliced => {
                self.bitsliced
                    .as_ref()
                    .expect("bitsliced keys built at construction")
                    .decrypt_blocks(blocks);
            }
            AesBackend::AesNi => {
                #[cfg(all(feature = "aesni", target_arch = "x86_64"))]
                self.ni.as_ref().expect("aesni keys built at construction").decrypt_blocks(blocks);
                #[cfg(not(all(feature = "aesni", target_arch = "x86_64")))]
                unreachable!("AesNi schedules cannot be constructed without the aesni feature");
            }
        }
    }

    /// XORs `data` with the keystream obtained by encrypting
    /// `counter_block(i)` for each 16-byte chunk `i` (the final chunk may be
    /// short). This is the shared engine behind [`crate::modes::Ctr128`] and
    /// [`crate::modes::SectorCipher`].
    ///
    /// The keystream is generated [`INTERLEAVE`] counter blocks at a time
    /// into a stack scratch and encrypted through the schedule's backend
    /// (interleaved T-tables, bitsliced planes or AES instructions); whole-
    /// block tails use the single-block path and the final short chunk XORs
    /// from one stack keystream block sliced to `chunk.len()` — no per-byte
    /// length branching.
    pub fn xor_keystream(&self, mut counter_block: impl FnMut(u64) -> [u8; 16], data: &mut [u8]) {
        let mut idx = 0u64;
        let mut scratch = [0u8; INTERLEAVE_BYTES];
        let mut wide = data.chunks_exact_mut(INTERLEAVE_BYTES);
        for chunk in &mut wide {
            for (j, ks) in scratch.chunks_exact_mut(16).enumerate() {
                ks.copy_from_slice(&counter_block(idx + j as u64));
            }
            idx += INTERLEAVE as u64;
            self.encrypt_batch_dispatch(&mut scratch);
            for (d, k) in chunk.iter_mut().zip(scratch.iter()) {
                *d ^= *k;
            }
        }
        for chunk in wide.into_remainder().chunks_mut(16) {
            let mut ks = counter_block(idx);
            idx += 1;
            self.encrypt_block(&mut ks);
            let ks = &ks[..chunk.len()];
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= *k;
            }
        }
    }
}

macro_rules! aes_variant {
    ($name:ident, $bytes:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone)]
        pub struct $name {
            schedule: KeySchedule,
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }

        impl $name {
            /// Expands the key with the process [`default_backend`]. The
            /// key length is enforced by the type.
            pub fn new(key: &[u8; $bytes]) -> Self {
                let schedule = KeySchedule::new(key).expect("key length enforced by type");
                $name { schedule }
            }

            /// Expands the key pinned to an explicit host engine.
            ///
            /// # Errors
            ///
            /// Returns [`crate::CryptoError::BackendUnavailable`] if
            /// `backend` cannot run in this build on this host.
            pub fn with_backend(
                key: &[u8; $bytes],
                backend: AesBackend,
            ) -> Result<Self, crate::CryptoError> {
                Ok($name { schedule: KeySchedule::with_backend(key, backend)? })
            }

            /// The host engine this cipher was pinned to at construction.
            pub fn backend(&self) -> AesBackend {
                self.schedule.backend()
            }

            /// Encrypts one 16-byte block in place.
            pub fn encrypt_block(&self, block: &mut [u8; 16]) {
                self.schedule.encrypt_block(block);
            }

            /// Decrypts one 16-byte block in place.
            pub fn decrypt_block(&self, block: &mut [u8; 16]) {
                self.schedule.decrypt_block(block);
            }

            /// Encrypts consecutive 16-byte blocks in place (batched).
            ///
            /// # Panics
            ///
            /// Panics if the length is not a multiple of 16.
            pub fn encrypt_blocks(&self, blocks: &mut [u8]) {
                self.schedule.encrypt_blocks(blocks);
            }

            /// Decrypts consecutive 16-byte blocks in place (batched).
            ///
            /// # Panics
            ///
            /// Panics if the length is not a multiple of 16.
            pub fn decrypt_blocks(&self, blocks: &mut [u8]) {
                self.schedule.decrypt_blocks(blocks);
            }

            /// Borrows the underlying schedule (for mode implementations).
            pub fn schedule(&self) -> &KeySchedule {
                &self.schedule
            }
        }
    };
}

aes_variant!(Aes128, 16, "AES with a 128-bit key.");
aes_variant!(Aes192, 24, "AES with a 192-bit key.");
aes_variant!(Aes256, 32, "AES with a 256-bit key.");

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_known_values() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
        for (i, &b) in SBOX.iter().enumerate() {
            assert_eq!(INV_SBOX[b as usize] as usize, i);
        }
    }

    #[test]
    fn t_tables_match_their_definition() {
        for x in 0..256usize {
            let s = SBOX[x];
            let expect = ((gmul(s, 2) as u32) << 24)
                | ((s as u32) << 16)
                | ((s as u32) << 8)
                | (gmul(s, 3) as u32);
            assert_eq!(TE[0][x], expect, "TE0 mismatch at {x:#x}");
            assert_eq!(TE[1][x], expect.rotate_right(8));
            let si = INV_SBOX[x];
            let expect_d = ((gmul(si, 14) as u32) << 24)
                | ((gmul(si, 9) as u32) << 16)
                | ((gmul(si, 13) as u32) << 8)
                | (gmul(si, 11) as u32);
            assert_eq!(TD[0][x], expect_d, "TD0 mismatch at {x:#x}");
            assert_eq!(TD[3][x], expect_d.rotate_right(24));
        }
    }

    // FIPS-197 Appendix C known-answer tests.
    #[test]
    fn fips197_aes128() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes128::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes192() {
        let key: [u8; 24] =
            hex("000102030405060708090a0b0c0d0e0f1011121314151617").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes192::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes256::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn default_backend_is_always_available() {
        assert!(default_backend().available());
    }

    #[test]
    fn backend_names_round_trip_through_parse() {
        for b in AesBackend::ALL {
            assert_eq!(AesBackend::parse(b.name()), Some(b));
        }
        assert_eq!(AesBackend::parse("quantum"), None);
    }

    #[test]
    fn unavailable_backend_is_a_typed_error() {
        if AesBackend::AesNi.available() {
            assert!(KeySchedule::with_backend(&[0u8; 16], AesBackend::AesNi).is_ok());
        } else {
            assert!(matches!(
                KeySchedule::with_backend(&[0u8; 16], AesBackend::AesNi),
                Err(crate::CryptoError::BackendUnavailable { backend: "aesni" })
            ));
        }
    }

    #[test]
    fn every_available_backend_passes_fips197_and_agrees() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let plain: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let want = hex("69c4e0d86a7b0430d8cdb78070b4c55a");
        for backend in AesBackend::ALL.into_iter().filter(|b| b.available()) {
            let ks = KeySchedule::with_backend(&key, backend).unwrap();
            assert_eq!(ks.backend(), backend);
            let mut block = plain;
            ks.encrypt_block(&mut block);
            assert_eq!(block.to_vec(), want, "KAT failed on {}", backend.name());
            ks.decrypt_block(&mut block);
            assert_eq!(block, plain, "inverse KAT failed on {}", backend.name());
        }
    }

    #[test]
    fn backends_agree_on_batches_and_keystream() {
        let key = [0xB7u8; 16];
        let reference = KeySchedule::with_backend(&key, AesBackend::TTable).unwrap();
        let block_fn = |i: u64| {
            let mut b = [0u8; 16];
            b[..8].copy_from_slice(&i.to_le_bytes());
            b
        };
        for backend in AesBackend::ALL.into_iter().filter(|b| b.available()) {
            let ks = KeySchedule::with_backend(&key, backend).unwrap();
            let mut batch: Vec<u8> = (0..16 * 13).map(|i| (i as u8).wrapping_mul(29)).collect();
            let mut expect = batch.clone();
            ks.encrypt_blocks(&mut batch);
            reference.encrypt_blocks(&mut expect);
            assert_eq!(batch, expect, "encrypt_blocks diverged on {}", backend.name());
            ks.decrypt_blocks(&mut batch);
            reference.decrypt_blocks(&mut expect);
            assert_eq!(batch, expect, "decrypt_blocks diverged on {}", backend.name());

            let mut stream = vec![0x3Du8; 137]; // not block aligned
            let mut expect = stream.clone();
            ks.xor_keystream(block_fn, &mut stream);
            reference.xor_keystream(block_fn, &mut expect);
            assert_eq!(stream, expect, "xor_keystream diverged on {}", backend.name());
        }
    }

    #[test]
    fn typed_variants_expose_backend_pinning() {
        let cipher = Aes256::with_backend(&[0x11u8; 32], AesBackend::Bitsliced).unwrap();
        assert_eq!(cipher.backend(), AesBackend::Bitsliced);
        let mut block = [0xA5u8; 16];
        let reference = Aes256::with_backend(&[0x11u8; 32], AesBackend::TTable).unwrap();
        let mut expect = block;
        cipher.encrypt_block(&mut block);
        reference.encrypt_block(&mut expect);
        assert_eq!(block, expect);
    }

    #[test]
    fn schedule_rejects_bad_key_length() {
        assert!(matches!(
            KeySchedule::new(&[0u8; 15]),
            Err(crate::CryptoError::InvalidKeyLength { got: 15, .. })
        ));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let ks = KeySchedule::new(&[0x42u8; 16]).unwrap();
        let s = format!("{ks:?}");
        assert!(!s.contains("42"), "debug output leaked key bytes: {s}");
    }

    #[test]
    fn encrypt_then_decrypt_roundtrips_many_keys() {
        for seed in 0u8..32 {
            let key = [seed.wrapping_mul(37); 16];
            let cipher = Aes128::new(&key);
            let mut block = [seed; 16];
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn roundtrips_all_key_sizes() {
        for seed in 0u8..8 {
            let plain = [seed.wrapping_mul(0x1D); 16];
            let mut b = plain;
            let c192 = Aes192::new(&[seed.wrapping_add(5); 24]);
            c192.encrypt_block(&mut b);
            c192.decrypt_block(&mut b);
            assert_eq!(b, plain);
            let c256 = Aes256::new(&[seed.wrapping_add(9); 32]);
            c256.encrypt_block(&mut b);
            c256.decrypt_block(&mut b);
            assert_eq!(b, plain);
        }
    }

    #[test]
    fn encrypt_blocks_matches_per_block_calls() {
        let cipher = Aes128::new(&[0x5Au8; 16]);
        let mut batch = vec![0u8; 16 * 9];
        for (i, b) in batch.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31);
        }
        let mut single = batch.clone();
        cipher.encrypt_blocks(&mut batch);
        for chunk in single.chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            cipher.encrypt_block(block);
        }
        assert_eq!(batch, single);
        cipher.decrypt_blocks(&mut batch);
        for (i, b) in batch.iter().enumerate() {
            assert_eq!(*b, (i as u8).wrapping_mul(31));
        }
    }

    #[test]
    #[should_panic(expected = "whole 16-byte blocks")]
    fn encrypt_blocks_rejects_partial_block() {
        Aes128::new(&[0u8; 16]).encrypt_blocks(&mut [0u8; 17]);
    }

    #[test]
    fn xor_keystream_is_an_involution_and_matches_manual_ctr() {
        let cipher = Aes128::new(&[0x77u8; 16]);
        let mut data = vec![0xC4u8; 100]; // deliberately not block-aligned
        let original = data.clone();
        let block_fn = |i: u64| {
            let mut b = [0u8; 16];
            b[8..].copy_from_slice(&i.to_be_bytes());
            b
        };
        cipher.schedule().xor_keystream(block_fn, &mut data);
        assert_ne!(data, original);
        // Manual per-block CTR must agree.
        let mut manual = original.clone();
        for (i, chunk) in manual.chunks_mut(16).enumerate() {
            let mut ks = block_fn(i as u64);
            cipher.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= *k;
            }
        }
        assert_eq!(data, manual);
        cipher.schedule().xor_keystream(block_fn, &mut data);
        assert_eq!(data, original);
    }
}
