//! Table-based AES (the simulation's "AES-NI" fast path).
//!
//! This is a straightforward, constant-table implementation of FIPS-197
//! supporting 128-, 192- and 256-bit keys. In the Fidelius model it stands
//! in for hardware AES:
//!
//! - the guest front-end driver uses it for `Kblk` disk encryption
//!   ("AES-NI based I/O protection", paper §4.3.5);
//! - the simulated memory-encryption engine
//!   (`fidelius-hw::memctrl`) uses it for the per-ASID `Kvek` / SME key.
//!
//! The deliberately slow sibling lives in [`crate::aes_soft`].

/// The AES S-box, computed at compile time from the GF(2⁸) inverse plus the
/// FIPS-197 affine transform.
pub const SBOX: [u8; 256] = build_sbox();

/// The inverse AES S-box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox();

const fn build_sbox() -> [u8; 256] {
    // Walk the multiplicative group of GF(2^8) with generator 3: p runs
    // through all non-zero elements while q runs through their inverses.
    let mut sbox = [0u8; 256];
    sbox[0] = 0x63;
    let mut p: u8 = 1;
    let mut q: u8 = 1;
    loop {
        // p := p * 3
        p = p ^ (p << 1) ^ (if p & 0x80 != 0 { 0x1B } else { 0 });
        // q := q / 3
        q ^= q << 1;
        q ^= q << 2;
        q ^= q << 4;
        if q & 0x80 != 0 {
            q ^= 0x09;
        }
        let x = q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4);
        sbox[p as usize] = x ^ 0x63;
        if p == 1 {
            break;
        }
    }
    sbox
}

const fn build_inv_sbox() -> [u8; 256] {
    let sbox = build_sbox();
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// Multiply by 2 in GF(2⁸) with the AES reduction polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1B } else { 0 })
}

/// General GF(2⁸) multiplication (used by the inverse MixColumns).
#[inline]
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    acc
}

const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// An expanded AES key schedule for any of the three standard key sizes.
///
/// Prefer the typed wrappers [`Aes128`] and [`Aes256`] in new code; the raw
/// schedule is exposed for the few places (e.g. the memory controller) that
/// select a key size at runtime.
#[derive(Clone)]
pub struct KeySchedule {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl std::fmt::Debug for KeySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("KeySchedule").field("rounds", &self.rounds).finish()
    }
}

impl KeySchedule {
    /// Expands `key` (16, 24 or 32 bytes) into round keys.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidKeyLength`] for any other length.
    pub fn new(key: &[u8]) -> Result<Self, crate::CryptoError> {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            24 => (6, 12),
            32 => (8, 14),
            other => return Err(crate::CryptoError::InvalidKeyLength { got: other, expected: 16 }),
        };
        let nwords = 4 * (rounds + 1);
        let mut w = vec![[0u8; 4]; nwords];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = Vec::with_capacity(rounds + 1);
        for r in 0..=rounds {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            round_keys.push(rk);
        }
        Ok(KeySchedule { round_keys, rounds })
    }

    /// Number of AES rounds for this key size (10, 12 or 14).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for r in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

// The state is kept in the FIPS-197 byte order: block[4*c + r] is row r,
// column c.

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row r rotates left by r.
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
        state[4 * c + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

macro_rules! aes_variant {
    ($name:ident, $bytes:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone)]
        pub struct $name {
            schedule: KeySchedule,
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }

        impl $name {
            /// Expands the key. The key length is enforced by the type.
            pub fn new(key: &[u8; $bytes]) -> Self {
                let schedule = KeySchedule::new(key).expect("key length enforced by type");
                $name { schedule }
            }

            /// Encrypts one 16-byte block in place.
            pub fn encrypt_block(&self, block: &mut [u8; 16]) {
                self.schedule.encrypt_block(block);
            }

            /// Decrypts one 16-byte block in place.
            pub fn decrypt_block(&self, block: &mut [u8; 16]) {
                self.schedule.decrypt_block(block);
            }

            /// Borrows the underlying schedule (for mode implementations).
            pub fn schedule(&self) -> &KeySchedule {
                &self.schedule
            }
        }
    };
}

aes_variant!(Aes128, 16, "AES with a 128-bit key.");
aes_variant!(Aes192, 24, "AES with a 192-bit key.");
aes_variant!(Aes256, 32, "AES with a 256-bit key.");

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_known_values() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
        for (i, &b) in SBOX.iter().enumerate() {
            assert_eq!(INV_SBOX[b as usize] as usize, i);
        }
    }

    // FIPS-197 Appendix C known-answer tests.
    #[test]
    fn fips197_aes128() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes128::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes192() {
        let key: [u8; 24] =
            hex("000102030405060708090a0b0c0d0e0f1011121314151617").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes192::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
    }

    #[test]
    fn fips197_aes256() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes256::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn schedule_rejects_bad_key_length() {
        assert!(matches!(
            KeySchedule::new(&[0u8; 15]),
            Err(crate::CryptoError::InvalidKeyLength { got: 15, .. })
        ));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let ks = KeySchedule::new(&[0x42u8; 16]).unwrap();
        let s = format!("{ks:?}");
        assert!(!s.contains("42"), "debug output leaked key bytes: {s}");
    }

    #[test]
    fn encrypt_then_decrypt_roundtrips_many_keys() {
        for seed in 0u8..32 {
            let key = [seed.wrapping_mul(37); 16];
            let cipher = Aes128::new(&key);
            let mut block = [seed; 16];
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }
}
