//! Bit-level "software emulated encryption", now table-accelerated on the
//! host.
//!
//! The paper's micro-benchmark 3 compares three ways of encrypting I/O
//! buffers: AES-NI (+11.49%), the SEV/SME engine (+8.69%) and *software
//! emulated encryption* (>20×). This module is that third contender. The
//! ">20×" is a *modeled* property — `fidelius-hw::cycles` charges
//! `soft_aes_line` cycles per line for it — so the host does not also have
//! to pay it in wall-clock time: the GF(2⁸) field math (inverse by Fermat
//! exponentiation, affine transform bit by bit, MixColumns by generic
//! shift-and-add multiplication) runs once per possible byte inside
//! `const fn`s, and [`SoftAes128`] consumes the resulting compile-time
//! tables. The derivation shares nothing with [`crate::aes`] (which walks
//! the multiplicative group with generator 3), so the two stay independent
//! cross-check oracles for each other.
//!
//! The original run-per-byte implementation is retained verbatim in
//! [`mod@reference`] and asserted equivalent in tests, keeping the textbook
//! math reviewable next to the tables it generates.

/// Bit-level GF(2⁸) multiply (no tables).
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
        i += 1;
    }
    acc
}

/// GF(2⁸) inverse via Fermat's little theorem: a⁻¹ = a^254.
const fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // Square-and-multiply over the 8-bit exponent 254 = 0b11111110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// The S-box computed from scratch for a single byte.
const fn sub_byte(b: u8) -> u8 {
    let x = gf_inv(b);
    let mut out = 0u8;
    let mut bit = 0u32;
    while bit < 8 {
        let v = ((x >> bit) & 1)
            ^ ((x >> ((bit + 4) % 8)) & 1)
            ^ ((x >> ((bit + 5) % 8)) & 1)
            ^ ((x >> ((bit + 6) % 8)) & 1)
            ^ ((x >> ((bit + 7) % 8)) & 1)
            ^ ((0x63 >> bit) & 1);
        out |= v << bit;
        bit += 1;
    }
    out
}

/// Inverse S-box computed from scratch for a single byte.
const fn inv_sub_byte(b: u8) -> u8 {
    // Invert the affine transform bit by bit, then take the field inverse.
    let mut x = 0u8;
    let mut bit = 0u32;
    while bit < 8 {
        let v = ((b >> ((bit + 2) % 8)) & 1)
            ^ ((b >> ((bit + 5) % 8)) & 1)
            ^ ((b >> ((bit + 7) % 8)) & 1)
            ^ ((0x05 >> bit) & 1);
        x |= v << bit;
        bit += 1;
    }
    gf_inv(x)
}

/// S-box table, derived at compile time from the first-principles math
/// above (Fermat inversion + bitwise affine transform).
const SOFT_SBOX: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = sub_byte(i as u8);
        i += 1;
    }
    t
};

/// Inverse S-box table.
const SOFT_INV_SBOX: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = inv_sub_byte(i as u8);
        i += 1;
    }
    t
};

/// GF(2⁸) multiplication tables for the MixColumns coefficients, again from
/// the generic shift-and-add multiply.
const fn gf_mul_table(coeff: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = gf_mul(coeff, i as u8);
        i += 1;
    }
    t
}

const MUL2: [u8; 256] = gf_mul_table(2);
const MUL3: [u8; 256] = gf_mul_table(3);
const MUL9: [u8; 256] = gf_mul_table(9);
const MUL11: [u8; 256] = gf_mul_table(11);
const MUL13: [u8; 256] = gf_mul_table(13);
const MUL14: [u8; 256] = gf_mul_table(14);

const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// Software AES-128 used as the "no hardware support" baseline. Its modeled
/// cycle cost stays >20× the engine's; its host cost no longer is.
///
/// Per-block encryption keeps the byte-table form below (the reviewable
/// "software-shaped" pipeline). The *bulk* entry points
/// ([`SoftAes128::ctr_apply`], [`SoftAes128::encrypt_blocks`]) ride the
/// interleaved T-table core from [`crate::aes`] instead: both compute
/// FIPS-197 AES-128, so the bytes are identical — the tests here prove the
/// byte-table, T-table and GF-math forms agree — and only the host pays
/// differently. The modeled `soft_aes_line` charge is unaffected.
#[derive(Clone)]
pub struct SoftAes128 {
    round_keys: [[u8; 16]; 11],
    /// The interleaved T-table schedule the bulk paths dispatch into.
    bulk: crate::aes::KeySchedule,
}

impl std::fmt::Debug for SoftAes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoftAes128").finish_non_exhaustive()
    }
}

impl SoftAes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let bulk = crate::aes::KeySchedule::new(key).expect("key length enforced by type");
        SoftAes128 { round_keys: expand_key(key), bulk }
    }

    /// Encrypts one block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        xor16(block, &self.round_keys[0]);
        for r in 1..10 {
            for b in block.iter_mut() {
                *b = SOFT_SBOX[*b as usize];
            }
            shift_rows(block);
            mix_columns(block);
            xor16(block, &self.round_keys[r]);
        }
        for b in block.iter_mut() {
            *b = SOFT_SBOX[*b as usize];
        }
        shift_rows(block);
        xor16(block, &self.round_keys[10]);
    }

    /// Decrypts one block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        xor16(block, &self.round_keys[10]);
        inv_shift_rows(block);
        for b in block.iter_mut() {
            *b = SOFT_INV_SBOX[*b as usize];
        }
        for r in (1..10).rev() {
            xor16(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            for b in block.iter_mut() {
                *b = SOFT_INV_SBOX[*b as usize];
            }
        }
        xor16(block, &self.round_keys[0]);
    }

    /// Encrypts consecutive 16-byte blocks in place (batched ECB) through
    /// the interleaved T-table core — byte-identical to per-block
    /// [`SoftAes128::encrypt_block`] calls, which the tests assert.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len()` is not a multiple of 16.
    pub fn encrypt_blocks(&self, blocks: &mut [u8]) {
        self.bulk.encrypt_blocks(blocks);
    }

    /// Encrypts a buffer in counter mode with a 128-bit starting counter.
    /// Provided so the I/O micro-benchmark can stream through large buffers.
    /// The keystream is generated eight counter blocks at a time through
    /// the interleaved core; the final short chunk XORs from one stack
    /// keystream block sliced to `chunk.len()`.
    pub fn ctr_apply(&self, counter0: u128, data: &mut [u8]) {
        self.bulk.xor_keystream(|i| counter0.wrapping_add(i as u128).to_be_bytes(), data);
    }
}

fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for b in &mut temp {
                *b = SOFT_SBOX[*b as usize];
            }
            temp[0] ^= RCON[i / 4];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for (r, rk) in round_keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    round_keys
}

#[inline]
fn xor16(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = MUL2[col[0] as usize] ^ MUL3[col[1] as usize] ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ MUL2[col[1] as usize] ^ MUL3[col[2] as usize] ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ MUL2[col[2] as usize] ^ MUL3[col[3] as usize];
        state[4 * c + 3] = MUL3[col[0] as usize] ^ col[1] ^ col[2] ^ MUL2[col[3] as usize];
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = MUL14[col[0] as usize]
            ^ MUL11[col[1] as usize]
            ^ MUL13[col[2] as usize]
            ^ MUL9[col[3] as usize];
        state[4 * c + 1] = MUL9[col[0] as usize]
            ^ MUL14[col[1] as usize]
            ^ MUL11[col[2] as usize]
            ^ MUL13[col[3] as usize];
        state[4 * c + 2] = MUL13[col[0] as usize]
            ^ MUL9[col[1] as usize]
            ^ MUL14[col[2] as usize]
            ^ MUL11[col[3] as usize];
        state[4 * c + 3] = MUL11[col[0] as usize]
            ^ MUL13[col[1] as usize]
            ^ MUL9[col[2] as usize]
            ^ MUL14[col[3] as usize];
    }
}

/// The original per-byte GF-math implementation, retained as the oracle the
/// table-based [`SoftAes128`] is proven against. Every field operation is
/// recomputed from first principles on every call — exactly the "textbook"
/// software implementation the paper's >20× number describes.
pub mod reference {
    use super::RCON;

    /// Bit-level GF(2⁸) multiply (no tables), evaluated at runtime.
    pub fn gf_mul(a: u8, b: u8) -> u8 {
        super::gf_mul(a, b)
    }

    /// GF(2⁸) inverse via Fermat's little theorem, evaluated at runtime.
    pub fn gf_inv(a: u8) -> u8 {
        super::gf_inv(a)
    }

    /// The S-box computed from scratch for a single byte.
    pub fn sub_byte(b: u8) -> u8 {
        super::sub_byte(b)
    }

    /// Inverse S-box computed from scratch for a single byte.
    pub fn inv_sub_byte(b: u8) -> u8 {
        super::inv_sub_byte(b)
    }

    /// The retained slow AES-128: per-byte field inversions each round.
    #[derive(Clone)]
    pub struct RefAes128 {
        round_keys: [[u8; 16]; 11],
    }

    impl RefAes128 {
        /// Expands a 128-bit key with per-byte S-box recomputation.
        pub fn new(key: &[u8; 16]) -> Self {
            let mut w = [[0u8; 4]; 44];
            for i in 0..4 {
                w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
            }
            for i in 4..44 {
                let mut temp = w[i - 1];
                if i % 4 == 0 {
                    temp.rotate_left(1);
                    for b in &mut temp {
                        *b = sub_byte(*b);
                    }
                    temp[0] ^= RCON[i / 4];
                }
                for j in 0..4 {
                    w[i][j] = w[i - 4][j] ^ temp[j];
                }
            }
            let mut round_keys = [[0u8; 16]; 11];
            for (r, rk) in round_keys.iter_mut().enumerate() {
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
            }
            RefAes128 { round_keys }
        }

        /// Encrypts one block in place (slowly, on purpose).
        pub fn encrypt_block(&self, block: &mut [u8; 16]) {
            super::xor16(block, &self.round_keys[0]);
            for r in 1..10 {
                for b in block.iter_mut() {
                    *b = sub_byte(*b);
                }
                super::shift_rows(block);
                mix_columns_ref(block);
                super::xor16(block, &self.round_keys[r]);
            }
            for b in block.iter_mut() {
                *b = sub_byte(*b);
            }
            super::shift_rows(block);
            super::xor16(block, &self.round_keys[10]);
        }

        /// Decrypts one block in place.
        pub fn decrypt_block(&self, block: &mut [u8; 16]) {
            super::xor16(block, &self.round_keys[10]);
            super::inv_shift_rows(block);
            for b in block.iter_mut() {
                *b = inv_sub_byte(*b);
            }
            for r in (1..10).rev() {
                super::xor16(block, &self.round_keys[r]);
                inv_mix_columns_ref(block);
                super::inv_shift_rows(block);
                for b in block.iter_mut() {
                    *b = inv_sub_byte(*b);
                }
            }
            super::xor16(block, &self.round_keys[0]);
        }
    }

    fn mix_columns_ref(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            for r in 0..4 {
                let coeffs = [[2u8, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]];
                state[4 * c + r] = (0..4).fold(0u8, |acc, i| acc ^ gf_mul(coeffs[r][i], col[i]));
            }
        }
    }

    fn inv_mix_columns_ref(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            for r in 0..4 {
                let coeffs = [[14u8, 11, 13, 9], [9, 14, 11, 13], [13, 9, 14, 11], [11, 13, 9, 14]];
                state[4 * c + r] = (0..4).fold(0u8, |acc, i| acc ^ gf_mul(coeffs[r][i], col[i]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::RefAes128;
    use super::*;
    use crate::aes::{Aes128, INV_SBOX, SBOX};

    #[test]
    fn soft_tables_match_per_byte_reference() {
        for b in 0..=255u8 {
            assert_eq!(SOFT_SBOX[b as usize], reference::sub_byte(b), "sbox mismatch at {b:#x}");
            assert_eq!(
                SOFT_INV_SBOX[b as usize],
                reference::inv_sub_byte(b),
                "inv sbox mismatch at {b:#x}"
            );
        }
    }

    #[test]
    fn sub_byte_matches_table() {
        for b in 0..=255u8 {
            assert_eq!(SOFT_SBOX[b as usize], SBOX[b as usize], "sbox mismatch at {b:#x}");
            assert_eq!(
                SOFT_INV_SBOX[b as usize], INV_SBOX[b as usize],
                "inv sbox mismatch at {b:#x}"
            );
        }
    }

    #[test]
    fn mul_tables_match_runtime_gf_mul() {
        for b in 0..=255u8 {
            assert_eq!(MUL2[b as usize], reference::gf_mul(2, b));
            assert_eq!(MUL3[b as usize], reference::gf_mul(3, b));
            assert_eq!(MUL9[b as usize], reference::gf_mul(9, b));
            assert_eq!(MUL11[b as usize], reference::gf_mul(11, b));
            assert_eq!(MUL13[b as usize], reference::gf_mul(13, b));
            assert_eq!(MUL14[b as usize], reference::gf_mul(14, b));
        }
    }

    #[test]
    fn matches_fast_aes_on_fips_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let soft = SoftAes128::new(&key);
        let fast = Aes128::new(&key);
        let mut a = plain;
        let mut b = plain;
        soft.encrypt_block(&mut a);
        fast.encrypt_block(&mut b);
        assert_eq!(a, b);
        soft.decrypt_block(&mut a);
        assert_eq!(a, plain);
    }

    /// Deterministic proptest: for random keys and blocks, the table-based
    /// cipher, the retained GF-math reference, and the T-table fast path
    /// all agree on encryption and decryption.
    #[test]
    fn cross_check_random_blocks() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..16 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            for i in 0..16 {
                key[i] = (next() >> 24) as u8;
                block[i] = (next() >> 16) as u8;
            }
            let soft = SoftAes128::new(&key);
            let fast = Aes128::new(&key);
            let slow = RefAes128::new(&key);
            let mut a = block;
            let mut b = block;
            let mut c = block;
            soft.encrypt_block(&mut a);
            fast.encrypt_block(&mut b);
            slow.encrypt_block(&mut c);
            assert_eq!(a, b);
            assert_eq!(a, c, "table-based soft AES diverged from GF-math reference");
            soft.decrypt_block(&mut a);
            slow.decrypt_block(&mut c);
            assert_eq!(a, block);
            assert_eq!(c, block);
        }
    }

    #[test]
    fn ctr_roundtrips() {
        let soft = SoftAes128::new(&[7u8; 16]);
        let mut data = vec![0xA5u8; 100];
        let original = data.clone();
        soft.ctr_apply(42, &mut data);
        assert_ne!(data, original);
        soft.ctr_apply(42, &mut data);
        assert_eq!(data, original);
    }

    /// The bulk CTR path dispatches into the interleaved T-table core; it
    /// must stay byte-identical to the seed's per-block byte-table loop —
    /// this doubles as a T-table-vs-byte-table cross-check over a long
    /// keystream, ragged tail included.
    #[test]
    fn ctr_bulk_matches_per_block_byte_table_loop() {
        let soft = SoftAes128::new(&[0x3Cu8; 16]);
        let mut data: Vec<u8> = (0..=254u8).collect(); // 255 bytes, short tail
        let original = data.clone();
        let counter0 = u128::MAX - 3; // exercise counter wrap mid-buffer
        soft.ctr_apply(counter0, &mut data);
        let mut manual = original.clone();
        let mut counter = counter0;
        for chunk in manual.chunks_mut(16) {
            let mut ks = counter.to_be_bytes();
            soft.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= *k;
            }
            counter = counter.wrapping_add(1);
        }
        assert_eq!(data, manual);
    }

    /// Batched ECB through the T-table core equals per-block byte-table
    /// encryption, including a non-multiple-of-8 block count.
    #[test]
    fn bulk_ecb_matches_per_block_byte_table() {
        let soft = SoftAes128::new(&[0x9Eu8; 16]);
        let mut batch: Vec<u8> = (0..16 * 11).map(|i| (i as u8).wrapping_mul(29)).collect();
        let mut manual = batch.clone();
        soft.encrypt_blocks(&mut batch);
        for chunk in manual.chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            soft.encrypt_block(block);
        }
        assert_eq!(batch, manual);
    }
}
