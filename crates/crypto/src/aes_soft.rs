//! Deliberately slow, bit-level AES ("software emulated encryption").
//!
//! The paper's micro-benchmark 3 compares three ways of encrypting I/O
//! buffers: AES-NI (+11.49%), the SEV/SME engine (+8.69%) and *software
//! emulated encryption* (>20×). This module is that third contender: a
//! correct AES-128 that recomputes every field operation from first
//! principles — the GF(2⁸) inverse by Fermat exponentiation per byte, the
//! affine transform bit by bit, MixColumns by generic shift-and-add
//! multiplication — exactly as a naive "textbook" software implementation
//! would. It shares no tables with [`crate::aes`], which also makes it a
//! useful cross-check oracle in tests.

/// Bit-level GF(2⁸) multiply (no tables).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    acc
}

/// GF(2⁸) inverse via Fermat's little theorem: a⁻¹ = a^254.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // Square-and-multiply over the 8-bit exponent 254 = 0b11111110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// The S-box computed from scratch for a single byte.
fn sub_byte(b: u8) -> u8 {
    let x = gf_inv(b);
    let mut out = 0u8;
    for bit in 0..8u32 {
        let v = ((x >> bit) & 1)
            ^ ((x >> ((bit + 4) % 8)) & 1)
            ^ ((x >> ((bit + 5) % 8)) & 1)
            ^ ((x >> ((bit + 6) % 8)) & 1)
            ^ ((x >> ((bit + 7) % 8)) & 1)
            ^ ((0x63 >> bit) & 1);
        out |= v << bit;
    }
    out
}

/// Inverse S-box computed from scratch for a single byte.
fn inv_sub_byte(b: u8) -> u8 {
    // Invert the affine transform bit by bit, then take the field inverse.
    let mut x = 0u8;
    for bit in 0..8u32 {
        let v = ((b >> ((bit + 2) % 8)) & 1)
            ^ ((b >> ((bit + 5) % 8)) & 1)
            ^ ((b >> ((bit + 7) % 8)) & 1)
            ^ ((0x05 >> bit) & 1);
        x |= v << bit;
    }
    gf_inv(x)
}

const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// Slow software AES-128 used as the "no hardware support" baseline.
#[derive(Clone)]
pub struct SoftAes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for SoftAes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoftAes128").finish_non_exhaustive()
    }
}

impl SoftAes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sub_byte(*b);
                }
                temp[0] ^= RCON[i / 4];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        SoftAes128 { round_keys }
    }

    /// Encrypts one block in place (slowly, on purpose).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        xor16(block, &self.round_keys[0]);
        for r in 1..10 {
            for b in block.iter_mut() {
                *b = sub_byte(*b);
            }
            shift_rows(block);
            mix_columns(block);
            xor16(block, &self.round_keys[r]);
        }
        for b in block.iter_mut() {
            *b = sub_byte(*b);
        }
        shift_rows(block);
        xor16(block, &self.round_keys[10]);
    }

    /// Decrypts one block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        xor16(block, &self.round_keys[10]);
        inv_shift_rows(block);
        for b in block.iter_mut() {
            *b = inv_sub_byte(*b);
        }
        for r in (1..10).rev() {
            xor16(block, &self.round_keys[r]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            for b in block.iter_mut() {
                *b = inv_sub_byte(*b);
            }
        }
        xor16(block, &self.round_keys[0]);
    }

    /// Encrypts a buffer in counter mode with a 128-bit starting counter.
    /// Provided so the I/O micro-benchmark can stream through large buffers.
    pub fn ctr_apply(&self, counter0: u128, data: &mut [u8]) {
        let mut counter = counter0;
        for chunk in data.chunks_mut(16) {
            let mut ks = counter.to_be_bytes();
            self.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= *k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

#[inline]
fn xor16(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        for r in 0..4 {
            let coeffs = [[2u8, 3, 1, 1], [1, 2, 3, 1], [1, 1, 2, 3], [3, 1, 1, 2]];
            state[4 * c + r] = (0..4).fold(0u8, |acc, i| acc ^ gf_mul(coeffs[r][i], col[i]));
        }
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        for r in 0..4 {
            let coeffs = [[14u8, 11, 13, 9], [9, 14, 11, 13], [13, 9, 14, 11], [11, 13, 9, 14]];
            state[4 * c + r] = (0..4).fold(0u8, |acc, i| acc ^ gf_mul(coeffs[r][i], col[i]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes128, INV_SBOX, SBOX};

    #[test]
    fn sub_byte_matches_table() {
        for b in 0..=255u8 {
            assert_eq!(sub_byte(b), SBOX[b as usize], "sbox mismatch at {b:#x}");
            assert_eq!(inv_sub_byte(b), INV_SBOX[b as usize], "inv sbox mismatch at {b:#x}");
        }
    }

    #[test]
    fn matches_fast_aes_on_fips_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let soft = SoftAes128::new(&key);
        let fast = Aes128::new(&key);
        let mut a = plain;
        let mut b = plain;
        soft.encrypt_block(&mut a);
        fast.encrypt_block(&mut b);
        assert_eq!(a, b);
        soft.decrypt_block(&mut a);
        assert_eq!(a, plain);
    }

    #[test]
    fn cross_check_random_blocks() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..16 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            for i in 0..16 {
                key[i] = (next() >> 24) as u8;
                block[i] = (next() >> 16) as u8;
            }
            let soft = SoftAes128::new(&key);
            let fast = Aes128::new(&key);
            let mut a = block;
            let mut b = block;
            soft.encrypt_block(&mut a);
            fast.encrypt_block(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ctr_roundtrips() {
        let soft = SoftAes128::new(&[7u8; 16]);
        let mut data = vec![0xA5u8; 100];
        let original = data.clone();
        soft.ctr_apply(42, &mut data);
        assert_ne!(data, original);
        soft.ctr_apply(42, &mut data);
        assert_eq!(data, original);
    }
}
