//! The Page Information Table (PIT).
//!
//! Per paper §5.2: a three-level radix tree keyed by physical frame number
//! whose last-level pages (4 KiB) hold 1024 entries of 32 bits each,
//! recording the **owner, usage, ASID and validity** of every physical
//! frame. Unlike a normal page table, the inner levels link by pointer
//! ("virtual frame number") to make walking cheap.
//!
//! Fidelius consults the PIT on every page-table / NPT / grant update to
//! decide whether a mapping is legal: e.g. "the page-table-page being
//! written must be owned by the hypervisor and used as a last-level
//! page-table-page" or "the frame being mapped must not belong to a
//! protected guest".
//!
//! The PIT lives in Fidelius-private memory (unmapped from the
//! hypervisor); the in-simulation representation is a real radix tree with
//! packed 32-bit entries, and queries charge the cycle model for the
//! three-level walk.

use fidelius_hw::cycles::Cycles;
use fidelius_hw::Hpa;

/// What a physical frame is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Usage {
    /// Not in use.
    Free = 0,
    /// Hypervisor code (write-forbidden).
    XenCode = 1,
    /// Hypervisor data / heap.
    XenData = 2,
    /// A host page-table-page (write-protected; updates via type-1 gate).
    XenPageTable = 3,
    /// A nested-page-table page of some domain.
    NptPage = 4,
    /// A guest-owned memory frame.
    GuestPage = 5,
    /// Fidelius code.
    FideliusCode = 6,
    /// Fidelius private data (unmapped from the hypervisor).
    FideliusData = 7,
    /// The grant table (write-protected; updates via type-1 gate).
    GrantTable = 8,
    /// A VMCB page (hypervisor-writable but shadow-verified).
    Vmcb = 9,
    /// Pages under the write-once policy (start_info/shared_info).
    WriteOnce = 10,
}

impl Usage {
    fn from_bits(v: u32) -> Usage {
        match v {
            1 => Usage::XenCode,
            2 => Usage::XenData,
            3 => Usage::XenPageTable,
            4 => Usage::NptPage,
            5 => Usage::GuestPage,
            6 => Usage::FideliusCode,
            7 => Usage::FideliusData,
            8 => Usage::GrantTable,
            9 => Usage::Vmcb,
            10 => Usage::WriteOnce,
            _ => Usage::Free,
        }
    }
}

/// One packed 32-bit PIT entry:
/// bit 0 = valid, bits 1..5 = usage, bits 5..17 = owner (domain id),
/// bits 17..29 = ASID, bit 29 = shared (granted) flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PitEntry(pub u32);

impl PitEntry {
    /// Builds an entry.
    pub fn new(usage: Usage, owner: u16, asid: u16, shared: bool) -> Self {
        let v = 1u32
            | ((usage as u32) << 1)
            | (((owner as u32) & 0xFFF) << 5)
            | (((asid as u32) & 0xFFF) << 17)
            | (u32::from(shared) << 29);
        PitEntry(v)
    }

    /// Valid (tracked) entry?
    pub fn valid(self) -> bool {
        self.0 & 1 != 0
    }

    /// The usage class.
    pub fn usage(self) -> Usage {
        if !self.valid() {
            Usage::Free
        } else {
            Usage::from_bits((self.0 >> 1) & 0xF)
        }
    }

    /// Owning domain id (0 = hypervisor/host for non-guest usages).
    pub fn owner(self) -> u16 {
        ((self.0 >> 5) & 0xFFF) as u16
    }

    /// ASID recorded for guest pages.
    pub fn asid(self) -> u16 {
        ((self.0 >> 17) & 0xFFF) as u16
    }

    /// Whether the frame is currently shared through a grant.
    pub fn shared(self) -> bool {
        self.0 & (1 << 29) != 0
    }

    /// Returns a copy with the shared flag set/cleared.
    pub fn with_shared(self, shared: bool) -> Self {
        PitEntry((self.0 & !(1 << 29)) | (u32::from(shared) << 29))
    }
}

const FANOUT: usize = 1024; // 10 bits per level

type Leaf = Box<[u32; FANOUT]>;

#[derive(Default)]
struct Mid {
    leaves: Vec<Option<Leaf>>, // FANOUT slots, allocated lazily
}

/// The three-level radix tree over physical frame numbers.
pub struct Pit {
    top: Vec<Option<Box<Mid>>>, // FANOUT slots
    queries: u64,
}

impl std::fmt::Debug for Pit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pit").field("queries", &self.queries).finish()
    }
}

impl Default for Pit {
    fn default() -> Self {
        Self::new()
    }
}

impl Pit {
    /// An empty PIT (all frames implicitly Free).
    pub fn new() -> Self {
        let mut top = Vec::with_capacity(FANOUT);
        top.resize_with(FANOUT, || None);
        Pit { top, queries: 0 }
    }

    fn split(pfn: u64) -> (usize, usize, usize) {
        let l0 = (pfn & 0x3FF) as usize;
        let l1 = ((pfn >> 10) & 0x3FF) as usize;
        let l2 = ((pfn >> 20) & 0x3FF) as usize;
        (l2, l1, l0)
    }

    /// Looks up the entry for a frame, charging the cycle model for the
    /// three-level walk.
    pub fn query(&mut self, frame: Hpa, cycles: &mut Cycles) -> PitEntry {
        self.queries += 1;
        // Three dependent loads, like the paper's accelerated page walk.
        cycles.charge(3.0);
        self.peek(frame)
    }

    /// Looks up without charging (internal bookkeeping).
    pub fn peek(&self, frame: Hpa) -> PitEntry {
        let (l2, l1, l0) = Self::split(frame.pfn());
        match &self.top[l2] {
            None => PitEntry::default(),
            Some(mid) => match mid.leaves.get(l1).and_then(|o| o.as_ref()) {
                None => PitEntry::default(),
                Some(leaf) => PitEntry(leaf[l0]),
            },
        }
    }

    /// Sets the entry for a frame.
    pub fn set(&mut self, frame: Hpa, entry: PitEntry) {
        let (l2, l1, l0) = Self::split(frame.pfn());
        let mid = self.top[l2].get_or_insert_with(|| {
            let mut m = Box::new(Mid::default());
            m.leaves.resize_with(FANOUT, || None);
            m
        });
        if mid.leaves.is_empty() {
            mid.leaves.resize_with(FANOUT, || None);
        }
        let leaf = mid.leaves[l1].get_or_insert_with(|| Box::new([0u32; FANOUT]));
        leaf[l0] = entry.0;
    }

    /// Marks a frame free.
    pub fn clear(&mut self, frame: Hpa) {
        self.set(frame, PitEntry::default());
    }

    /// Sets a contiguous range of frames.
    pub fn set_range(&mut self, start: Hpa, count: u64, entry: PitEntry) {
        for i in 0..count {
            self.set(Hpa::from_pfn(start.pfn() + i), entry);
        }
    }

    /// Number of queries served (statistics for the evaluation).
    pub fn query_count(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_packing_roundtrip() {
        let e = PitEntry::new(Usage::GuestPage, 5, 3, true);
        assert!(e.valid());
        assert_eq!(e.usage(), Usage::GuestPage);
        assert_eq!(e.owner(), 5);
        assert_eq!(e.asid(), 3);
        assert!(e.shared());
        let e2 = e.with_shared(false);
        assert!(!e2.shared());
        assert_eq!(e2.usage(), Usage::GuestPage);
    }

    #[test]
    fn default_entry_is_free() {
        let e = PitEntry::default();
        assert!(!e.valid());
        assert_eq!(e.usage(), Usage::Free);
    }

    #[test]
    fn all_usages_pack() {
        for u in [
            Usage::XenCode,
            Usage::XenData,
            Usage::XenPageTable,
            Usage::NptPage,
            Usage::GuestPage,
            Usage::FideliusCode,
            Usage::FideliusData,
            Usage::GrantTable,
            Usage::Vmcb,
            Usage::WriteOnce,
        ] {
            assert_eq!(PitEntry::new(u, 0, 0, false).usage(), u);
        }
    }

    #[test]
    fn query_and_set() {
        let mut pit = Pit::new();
        let mut cycles = Cycles::new();
        assert_eq!(pit.query(Hpa(0x5000), &mut cycles).usage(), Usage::Free);
        pit.set(Hpa(0x5000), PitEntry::new(Usage::XenPageTable, 0, 0, false));
        assert_eq!(pit.query(Hpa(0x5000), &mut cycles).usage(), Usage::XenPageTable);
        // A different frame in the same leaf.
        assert_eq!(pit.query(Hpa(0x6000), &mut cycles).usage(), Usage::Free);
        assert_eq!(pit.query_count(), 3);
        assert!(cycles.total() > 0);
    }

    #[test]
    fn sparse_frames_far_apart() {
        let mut pit = Pit::new();
        let far = Hpa::from_pfn(1 << 25); // exercises upper levels
        pit.set(far, PitEntry::new(Usage::FideliusData, 0, 0, false));
        assert_eq!(pit.peek(far).usage(), Usage::FideliusData);
        assert_eq!(pit.peek(Hpa::from_pfn((1 << 25) + 1)).usage(), Usage::Free);
    }

    #[test]
    fn set_range_and_clear() {
        let mut pit = Pit::new();
        pit.set_range(Hpa(0x10000), 4, PitEntry::new(Usage::GuestPage, 2, 2, false));
        for i in 0..4u64 {
            assert_eq!(pit.peek(Hpa(0x10000 + i * 4096)).owner(), 2);
        }
        pit.clear(Hpa(0x11000));
        assert_eq!(pit.peek(Hpa(0x11000)).usage(), Usage::Free);
        assert_eq!(pit.peek(Hpa(0x12000)).usage(), Usage::GuestPage);
    }
}
