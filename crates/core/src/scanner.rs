//! The binary scanner (paper §4.1.2).
//!
//! For instructions that may disable protection, Fidelius *monopolizes*
//! them: binary scanning ensures that no occurrence of the opcode bytes —
//! "no matter aligned to instruction boundaries or not" — exists in the
//! hypervisor's code region, except the single copies inside Fidelius's
//! own code. Found occurrences in the hypervisor image are erased
//! (replaced with NOPs) during late launch.

/// The privileged-instruction byte patterns Fidelius polices.
pub const PATTERNS: [(&str, &[u8]); 7] = [
    ("mov cr0", &[0x0F, 0x22, 0xC0]),
    ("mov cr3", &[0x0F, 0x22, 0xD8]),
    ("mov cr4", &[0x0F, 0x22, 0xE0]),
    ("wrmsr", &[0x0F, 0x30]),
    ("vmrun", &[0x0F, 0x01, 0xD8]),
    ("lgdt", &[0x0F, 0x01, 0x10]),
    ("lidt", &[0x0F, 0x01, 0x18]),
];

/// One occurrence found by the scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding {
    /// Byte offset in the scanned region.
    pub offset: usize,
    /// Index into [`PATTERNS`].
    pub pattern: usize,
}

/// Every policed pattern begins with the two-byte-opcode escape.
const ANCHOR: u8 = 0x0F;

/// Scans `code` for every occurrence of every pattern, at *every* byte
/// offset (unaligned occurrences included).
///
/// All patterns share the `0x0F` two-byte-opcode escape as their first
/// byte, so one pass visits only
/// escape bytes and compares the short pattern tails in index order; the
/// findings therefore come out already sorted by `(offset, pattern)`,
/// exactly as the per-pattern sweep produced.
pub fn scan(code: &[u8]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut off = 0;
    while let Some(rel) = code[off..].iter().position(|&b| b == ANCHOR) {
        let at = off + rel;
        let rest = &code[at + 1..];
        for (pi, (_, pat)) in PATTERNS.iter().enumerate() {
            let tail = &pat[1..];
            if rest.len() >= tail.len() && &rest[..tail.len()] == tail {
                findings.push(Finding { offset: at, pattern: pi });
            }
        }
        off = at + 1;
    }
    findings
}

/// Erases every occurrence in place (NOP fill). Returns how many were
/// erased.
pub fn erase(code: &mut [u8]) -> usize {
    let findings = scan(code);
    for f in &findings {
        let len = PATTERNS[f.pattern].1.len();
        code[f.offset..f.offset + len].fill(0x90);
    }
    findings.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_aligned_and_unaligned() {
        let mut code = vec![0x90u8; 64];
        code[10..13].copy_from_slice(&[0x0F, 0x22, 0xC0]); // mov cr0
                                                           // An "unaligned" vmrun hidden inside other bytes.
        code[30..33].copy_from_slice(&[0x0F, 0x01, 0xD8]);
        let f = scan(&code);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].offset, 10);
        assert_eq!(f[1].offset, 30);
    }

    #[test]
    fn erase_removes_everything() {
        let mut code = vec![0u8; 128];
        code[5..7].copy_from_slice(&[0x0F, 0x30]); // wrmsr
        code[60..63].copy_from_slice(&[0x0F, 0x22, 0xD8]); // mov cr3
        assert_eq!(erase(&mut code), 2);
        assert!(scan(&code).is_empty());
        assert_eq!(&code[5..7], &[0x90, 0x90]);
    }

    #[test]
    fn overlapping_bytes_cannot_hide_an_instruction() {
        // 0F 22 0F 22 C0: contains "mov cr0" at offset 2.
        let mut code = vec![0x0F, 0x22, 0x0F, 0x22, 0xC0, 0x90];
        let f = scan(&code);
        assert!(f.iter().any(|f| f.offset == 2 && PATTERNS[f.pattern].0 == "mov cr0"));
        erase(&mut code);
        assert!(scan(&code).is_empty());
    }

    #[test]
    fn clean_code_scans_empty() {
        assert!(scan(&[0x90; 256]).is_empty());
        assert!(scan(&[]).is_empty());
    }

    #[test]
    fn every_pattern_starts_with_the_anchor() {
        for (name, pat) in PATTERNS {
            assert_eq!(pat[0], ANCHOR, "{name} does not start with the opcode escape");
        }
    }

    /// The per-pattern sweep the anchored scan replaced; kept as the oracle.
    fn scan_reference(code: &[u8]) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (pi, (_, pat)) in PATTERNS.iter().enumerate() {
            if pat.len() > code.len() {
                continue;
            }
            for off in 0..=(code.len() - pat.len()) {
                if &code[off..off + pat.len()] == *pat {
                    findings.push(Finding { offset: off, pattern: pi });
                }
            }
        }
        findings.sort_by_key(|f| (f.offset, f.pattern));
        findings
    }

    #[test]
    fn anchored_scan_matches_reference_on_adversarial_bytes() {
        // Bytes drawn from the pattern alphabet so matches (including
        // overlapping and truncated-at-the-end ones) are dense.
        let alphabet = [0x0F, 0x22, 0x01, 0x30, 0xC0, 0xD8, 0xE0, 0x10, 0x18, 0x90];
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in [0usize, 1, 2, 3, 7, 64, 257, 1024] {
            let code: Vec<u8> = (0..len)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    alphabet[(state % alphabet.len() as u64) as usize]
                })
                .collect();
            assert_eq!(scan(&code), scan_reference(&code), "len {len}");
        }
    }
}
