//! The three gate types securing transitions into the Fidelius context
//! (paper §4.1.3, Figure 3).
//!
//! - **Type 1 — disable WP**: the common case. Interrupts off, switch to
//!   the private stack, clear `CR0.WP` so the read-only critical resources
//!   become writable *for supervisor code*, run the protected body, redo
//!   everything in reverse. Costs 306 cycles round trip.
//! - **Type 2 — checking loop**: for monopolized instructions (`mov cr0`,
//!   `mov cr4`, `wrmsr`, …) that stay mapped executable: sanity checks
//!   around the single instruction instance. 16 cycles.
//! - **Type 3 — add new mapping**: for instructions whose pages are
//!   normally unmapped (`vmrun`, `mov cr3`) and for unmapped resources:
//!   temporarily map the page, flush the stale TLB entry, execute, then
//!   withdraw the mapping. 339 cycles.
//!
//! The gates execute real privileged instructions at Fidelius's
//! instruction sites — the CPU verifies the bytes exist and are mapped
//! executable, so the gates work *because* late launch set the mappings
//! up, not by fiat.

use crate::GuardError;
use fidelius_hw::cpu::PrivOp;
use fidelius_hw::cycles::CycleCategory;
use fidelius_hw::memctrl::EncSel;
use fidelius_hw::paging::PhysPtAccess;
use fidelius_hw::regs::Cr0;
use fidelius_hw::{Hpa, Hva};
use fidelius_telemetry::{Event, GateKind};
use fidelius_xen::layout::InstrSites;
use fidelius_xen::platform::Platform;

/// Static label for the instruction a gate executed (for trace events).
pub(crate) fn privop_label(op: &PrivOp) -> &'static str {
    match op {
        PrivOp::WriteCr0(_) => "mov-cr0",
        PrivOp::WriteCr3(_) => "mov-cr3",
        PrivOp::WriteCr4(_) => "mov-cr4",
        PrivOp::WriteEfer(_) => "wrmsr-efer",
        PrivOp::Vmrun(_) => "vmrun",
        PrivOp::Invlpg(_) => "invlpg",
        PrivOp::Lgdt(_) => "lgdt",
        PrivOp::Lidt(_) => "lidt",
        PrivOp::Cli => "cli",
        PrivOp::Sti => "sti",
    }
}

/// A page-mapping slot used by type-3 gates: the physical address of the
/// leaf page-table entry for the instruction page, and the PTE value that
/// maps it (present) — normally the entry holds 0.
#[derive(Debug, Clone, Copy)]
pub struct GateMapping {
    /// Physical address of the leaf PTE controlling the page.
    pub leaf_entry_pa: Hpa,
    /// PTE value that makes the page present + executable.
    pub mapped_pte: u64,
    /// The page's virtual address (for the TLB flush).
    pub page_va: Hva,
}

/// Gate state: Fidelius's instruction sites plus the type-3 mapping slots.
#[derive(Debug, Clone)]
pub struct Gates {
    /// Fidelius's instruction sites.
    pub sites: InstrSites,
    /// Mapping slot for the page holding `vmrun`.
    pub vmrun_page: GateMapping,
    /// Mapping slot for the page holding `mov cr3`.
    pub cr3_page: GateMapping,
    gate1_count: u64,
    gate2_count: u64,
    gate3_count: u64,
}

impl Gates {
    /// Builds the gate state (late launch wires the mapping slots).
    pub fn new(sites: InstrSites, vmrun_page: GateMapping, cr3_page: GateMapping) -> Self {
        Gates { sites, vmrun_page, cr3_page, gate1_count: 0, gate2_count: 0, gate3_count: 0 }
    }

    /// (type-1, type-2, type-3) invocation counts.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.gate1_count, self.gate2_count, self.gate3_count)
    }

    /// Type-1 gate: runs `body` with `CR0.WP` cleared. The body's own
    /// memory traffic is charged by the machine as usual; the gate adds
    /// the transition cost (306 cycles round trip).
    ///
    /// # Errors
    ///
    /// Propagates body errors; WP is always restored.
    pub fn type1<R>(
        &mut self,
        plat: &mut Platform,
        body: impl FnOnce(&mut Platform) -> Result<R, GuardError>,
    ) -> Result<R, GuardError> {
        self.gate1_count += 1;
        let span = plat.machine.cycles.enter(CycleCategory::Gates);
        let result = (|| {
            let m = &mut plat.machine;
            m.exec_priv(self.sites.cli, PrivOp::Cli)?;
            m.cycles.charge(m.cost.stack_switch);
            m.exec_priv(self.sites.write_cr0, PrivOp::WriteCr0(Cr0 { pg: true, wp: false }))?;
            m.cycles.charge(m.cost.sanity_check);

            let result = body(plat);

            let m = &mut plat.machine;
            m.cycles.charge(m.cost.sanity_check);
            m.exec_priv(self.sites.write_cr0, PrivOp::WriteCr0(Cr0 { pg: true, wp: true }))
                .expect("restoring WP cannot fail");
            m.cycles.charge(m.cost.stack_switch);
            m.exec_priv(self.sites.sti, PrivOp::Sti).expect("sti cannot fail");
            result
        })();
        plat.machine.cycles.exit(span);
        plat.machine.trace.emit(Event::Gate { kind: GateKind::Type1, op: "protected-body" });
        result
    }

    /// Type-2 gate: executes a monopolized instruction at its Fidelius
    /// site, with the checking-loop sanity checks around it (16 cycles of
    /// gate overhead plus the instruction itself).
    ///
    /// # Errors
    ///
    /// Propagates execution faults.
    pub fn type2(&mut self, plat: &mut Platform, op: PrivOp) -> Result<(), GuardError> {
        self.gate2_count += 1;
        let site = match op {
            PrivOp::WriteCr0(_) => self.sites.write_cr0,
            PrivOp::WriteCr4(_) => self.sites.write_cr4,
            PrivOp::WriteEfer(_) => self.sites.wrmsr,
            PrivOp::Invlpg(_) => self.sites.invlpg,
            PrivOp::Lgdt(_) => self.sites.lgdt,
            PrivOp::Lidt(_) => self.sites.lidt,
            PrivOp::Cli => self.sites.cli,
            PrivOp::Sti => self.sites.sti,
            PrivOp::Vmrun(_) | PrivOp::WriteCr3(_) => {
                return Err(GuardError::Policy("vmrun/mov-cr3 require a type-3 gate"))
            }
        };
        let m = &mut plat.machine;
        let span = m.cycles.enter(CycleCategory::Gates);
        let result = (|| {
            m.cycles.charge(m.cost.sanity_check);
            m.exec_priv(site, op)?;
            m.cycles.charge(m.cost.sanity_check);
            Ok(())
        })();
        m.cycles.exit(span);
        m.trace.emit(Event::Gate { kind: GateKind::Type2, op: privop_label(&op) });
        result
    }

    /// Type-3 gate: temporarily maps the instruction's page, executes it,
    /// and withdraws the mapping (339 cycles of gate overhead plus the
    /// instruction).
    ///
    /// # Errors
    ///
    /// Propagates execution faults; the page is always unmapped again.
    pub fn type3(&mut self, plat: &mut Platform, op: PrivOp) -> Result<(), GuardError> {
        self.gate3_count += 1;
        let (mapping, site) = match op {
            PrivOp::Vmrun(_) => (self.vmrun_page, self.sites.vmrun),
            PrivOp::WriteCr3(_) => (self.cr3_page, self.sites.write_cr3),
            _ => return Err(GuardError::Policy("type-3 gate is for vmrun/mov-cr3")),
        };
        let span = plat.machine.cycles.enter(CycleCategory::Gates);
        let result = (|| {
            let m = &mut plat.machine;
            m.exec_priv(self.sites.cli, PrivOp::Cli)?;
            m.cycles.charge(m.cost.stack_switch + m.cost.gate_dispatch);

            // Map the page in: one PTE write (gate-internal privileged write)
            // plus a TLB-entry flush for mapping freshness.
            {
                let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
                use fidelius_hw::paging::PtAccess;
                acc.write_entry(mapping.leaf_entry_pa, mapping.mapped_pte)
                    .map_err(GuardError::Hw)?;
            }
            plat.machine.cycles.charge(plat.machine.cost.cached_word_write);
            plat.machine.exec_priv(self.sites.invlpg, PrivOp::Invlpg(mapping.page_va))?;
            plat.machine.cycles.charge(plat.machine.cost.sanity_check);

            let result = plat.machine.exec_priv(site, op);

            // Withdraw the mapping regardless of the outcome.
            {
                let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
                use fidelius_hw::paging::PtAccess;
                acc.write_entry(mapping.leaf_entry_pa, 0).map_err(GuardError::Hw)?;
            }
            plat.machine.cycles.charge(plat.machine.cost.cached_word_write);
            // After VMRUN the CPU is in guest mode; the flush instruction has
            // conceptually already executed on the way in — charge it, and
            // only execute it architecturally when still in host mode.
            if plat.machine.cpu.mode == fidelius_hw::cpu::Mode::Host {
                plat.machine.exec_priv(self.sites.invlpg, PrivOp::Invlpg(mapping.page_va))?;
                plat.machine.cycles.charge(plat.machine.cost.sanity_check);
                plat.machine.exec_priv(self.sites.sti, PrivOp::Sti)?;
            } else {
                plat.machine
                    .cycles
                    .charge_as(CycleCategory::Paging, plat.machine.cost.tlb_flush_entry);
                plat.machine.cycles.charge(plat.machine.cost.sanity_check + plat.machine.cost.sti);
            }
            plat.machine
                .cycles
                .charge(plat.machine.cost.stack_switch + plat.machine.cost.gate_dispatch);
            result.map_err(GuardError::from)
        })();
        plat.machine.cycles.exit(span);
        plat.machine.trace.emit(Event::Gate { kind: GateKind::Type3, op: privop_label(&op) });
        result
    }
}
