//! The three gate types securing transitions into the Fidelius context
//! (paper §4.1.3, Figure 3).
//!
//! - **Type 1 — disable WP**: the common case. Interrupts off, switch to
//!   the private stack, clear `CR0.WP` so the read-only critical resources
//!   become writable *for supervisor code*, run the protected body, redo
//!   everything in reverse. Costs 306 cycles round trip.
//! - **Type 2 — checking loop**: for monopolized instructions (`mov cr0`,
//!   `mov cr4`, `wrmsr`, …) that stay mapped executable: sanity checks
//!   around the single instruction instance. 16 cycles.
//! - **Type 3 — add new mapping**: for instructions whose pages are
//!   normally unmapped (`vmrun`, `mov cr3`) and for unmapped resources:
//!   temporarily map the page, flush the stale TLB entry, execute, then
//!   withdraw the mapping. 339 cycles.
//!
//! The gates execute real privileged instructions at Fidelius's
//! instruction sites — the CPU verifies the bytes exist and are mapped
//! executable, so the gates work *because* late launch set the mappings
//! up, not by fiat.

use crate::GuardError;
use fidelius_hw::cpu::PrivOp;
use fidelius_hw::cycles::CycleCategory;
use fidelius_hw::inject::{FaultAction, InjectPoint};
use fidelius_hw::memctrl::EncSel;
use fidelius_hw::paging::PhysPtAccess;
use fidelius_hw::regs::Cr0;
use fidelius_hw::{Hpa, Hva};
use fidelius_telemetry::{DenialReason, Event, FaultKind, GateKind, InjectionOutcome};
use fidelius_trace::{ArgValue, SpanKind};
use fidelius_xen::layout::InstrSites;
use fidelius_xen::platform::Platform;

/// How many delayed gate responses a single gate invocation absorbs (with
/// doubling backoff) before it declares the transition lost and fails
/// closed with [`DenialReason::GateResponseTimeout`].
pub const GATE_RETRY_MAX: u32 = 4;

/// Graceful degradation for delayed gate responses: an adversarial
/// hypervisor can stall the context switch into Fidelius (e.g. by flooding
/// the core with IPIs); the gate re-attempts the transition a bounded
/// number of times, charging the modelled wait each round, and fails
/// closed — audited, typed — when the budget runs out.
///
/// # Errors
///
/// [`GuardError::Policy`] carrying [`DenialReason::GateResponseTimeout`]
/// once more than [`GATE_RETRY_MAX`] delays are injected back to back.
fn absorb_delays(plat: &mut Platform) -> Result<(), GuardError> {
    if !plat.machine.inject.is_armed() {
        return Ok(());
    }
    let mut attempt: u32 = 0;
    let mut backoff = plat.machine.cost.gate_dispatch.max(1.0);
    while let Some(action) = plat.machine.inject_at(InjectPoint::GateEntry) {
        match action {
            FaultAction::DelayGate { ticks } => {
                attempt += 1;
                plat.machine.cycles.charge(backoff * ticks.max(1) as f64);
                backoff *= 2.0;
                if attempt > GATE_RETRY_MAX {
                    plat.machine
                        .trace
                        .emit(Event::Denial { reason: DenialReason::GateResponseTimeout });
                    plat.machine.trace.emit(Event::FaultOutcome {
                        kind: FaultKind::DelayedGate,
                        outcome: InjectionOutcome::FailClosed(DenialReason::GateResponseTimeout),
                    });
                    return Err(GuardError::Policy(DenialReason::GateResponseTimeout.as_str()));
                }
            }
            other => {
                // A non-delay action routed here has no gate-level effect;
                // report it tolerated so every injection has a disposal.
                plat.machine.trace.emit(Event::FaultOutcome {
                    kind: other.kind(),
                    outcome: InjectionOutcome::Tolerated,
                });
            }
        }
    }
    if attempt > 0 {
        plat.machine.trace.emit(Event::FaultOutcome {
            kind: FaultKind::DelayedGate,
            outcome: InjectionOutcome::ToleratedAfterRetry(attempt),
        });
    }
    Ok(())
}

/// Static label for the instruction a gate executed (for trace events).
pub(crate) fn privop_label(op: &PrivOp) -> &'static str {
    match op {
        PrivOp::WriteCr0(_) => "mov-cr0",
        PrivOp::WriteCr3(_) => "mov-cr3",
        PrivOp::WriteCr4(_) => "mov-cr4",
        PrivOp::WriteEfer(_) => "wrmsr-efer",
        PrivOp::Vmrun(_) => "vmrun",
        PrivOp::Invlpg(_) => "invlpg",
        PrivOp::Lgdt(_) => "lgdt",
        PrivOp::Lidt(_) => "lidt",
        PrivOp::Cli => "cli",
        PrivOp::Sti => "sti",
    }
}

/// A page-mapping slot used by type-3 gates: the physical address of the
/// leaf page-table entry for the instruction page, and the PTE value that
/// maps it (present) — normally the entry holds 0.
#[derive(Debug, Clone, Copy)]
pub struct GateMapping {
    /// Physical address of the leaf PTE controlling the page.
    pub leaf_entry_pa: Hpa,
    /// PTE value that makes the page present + executable.
    pub mapped_pte: u64,
    /// The page's virtual address (for the TLB flush).
    pub page_va: Hva,
}

/// Gate state: Fidelius's instruction sites plus the type-3 mapping slots.
#[derive(Debug, Clone)]
pub struct Gates {
    /// Fidelius's instruction sites.
    pub sites: InstrSites,
    /// Mapping slot for the page holding `vmrun`.
    pub vmrun_page: GateMapping,
    /// Mapping slot for the page holding `mov cr3`.
    pub cr3_page: GateMapping,
    gate1_count: u64,
    gate2_count: u64,
    gate3_count: u64,
}

impl Gates {
    /// Builds the gate state (late launch wires the mapping slots).
    pub fn new(sites: InstrSites, vmrun_page: GateMapping, cr3_page: GateMapping) -> Self {
        Gates { sites, vmrun_page, cr3_page, gate1_count: 0, gate2_count: 0, gate3_count: 0 }
    }

    /// (type-1, type-2, type-3) invocation counts.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.gate1_count, self.gate2_count, self.gate3_count)
    }

    /// Type-1 gate: runs `body` with `CR0.WP` cleared. The body's own
    /// memory traffic is charged by the machine as usual; the gate adds
    /// the transition cost (306 cycles round trip).
    ///
    /// # Errors
    ///
    /// Propagates body errors; WP is always restored.
    pub fn type1<R>(
        &mut self,
        plat: &mut Platform,
        body: impl FnOnce(&mut Platform) -> Result<R, GuardError>,
    ) -> Result<R, GuardError> {
        absorb_delays(plat)?;
        self.gate1_count += 1;
        // Trace span co-located with the cycle-category span, so the
        // recorder's timeline and the Gates attribution cannot disagree.
        let tspan = plat.machine.span_open(SpanKind::Gate, "gate:type1", &[]);
        let span = plat.machine.cycles.enter(CycleCategory::Gates);
        let result = (|| {
            let m = &mut plat.machine;
            m.exec_priv(self.sites.cli, PrivOp::Cli)?;
            m.cycles.charge(m.cost.stack_switch);
            m.exec_priv(self.sites.write_cr0, PrivOp::WriteCr0(Cr0 { pg: true, wp: false }))?;
            m.cycles.charge(m.cost.sanity_check);

            let result = body(plat);

            let m = &mut plat.machine;
            m.cycles.charge(m.cost.sanity_check);
            m.exec_priv(self.sites.write_cr0, PrivOp::WriteCr0(Cr0 { pg: true, wp: true }))
                .expect("restoring WP cannot fail");
            m.cycles.charge(m.cost.stack_switch);
            m.exec_priv(self.sites.sti, PrivOp::Sti).expect("sti cannot fail");
            result
        })();
        plat.machine.cycles.exit(span);
        plat.machine.span_close(tspan);
        plat.machine.trace.emit(Event::Gate { kind: GateKind::Type1, op: "protected-body" });
        result
    }

    /// Type-2 gate: executes a monopolized instruction at its Fidelius
    /// site, with the checking-loop sanity checks around it (16 cycles of
    /// gate overhead plus the instruction itself).
    ///
    /// # Errors
    ///
    /// Propagates execution faults.
    pub fn type2(&mut self, plat: &mut Platform, op: PrivOp) -> Result<(), GuardError> {
        absorb_delays(plat)?;
        self.gate2_count += 1;
        let site = match op {
            PrivOp::WriteCr0(_) => self.sites.write_cr0,
            PrivOp::WriteCr4(_) => self.sites.write_cr4,
            PrivOp::WriteEfer(_) => self.sites.wrmsr,
            PrivOp::Invlpg(_) => self.sites.invlpg,
            PrivOp::Lgdt(_) => self.sites.lgdt,
            PrivOp::Lidt(_) => self.sites.lidt,
            PrivOp::Cli => self.sites.cli,
            PrivOp::Sti => self.sites.sti,
            PrivOp::Vmrun(_) | PrivOp::WriteCr3(_) => {
                return Err(GuardError::Policy("vmrun/mov-cr3 require a type-3 gate"))
            }
        };
        let m = &mut plat.machine;
        let tspan =
            m.span_open(SpanKind::Gate, "gate:type2", &[("op", ArgValue::Str(privop_label(&op)))]);
        let span = m.cycles.enter(CycleCategory::Gates);
        let result = (|| {
            m.cycles.charge(m.cost.sanity_check);
            m.exec_priv(site, op)?;
            m.cycles.charge(m.cost.sanity_check);
            Ok(())
        })();
        m.cycles.exit(span);
        m.span_close(tspan);
        m.trace.emit(Event::Gate { kind: GateKind::Type2, op: privop_label(&op) });
        result
    }

    /// Type-3 gate: temporarily maps the instruction's page, executes it,
    /// and withdraws the mapping (339 cycles of gate overhead plus the
    /// instruction).
    ///
    /// # Errors
    ///
    /// Propagates execution faults; the page is always unmapped again.
    pub fn type3(&mut self, plat: &mut Platform, op: PrivOp) -> Result<(), GuardError> {
        absorb_delays(plat)?;
        self.gate3_count += 1;
        let (mapping, site) = match op {
            PrivOp::Vmrun(_) => (self.vmrun_page, self.sites.vmrun),
            PrivOp::WriteCr3(_) => (self.cr3_page, self.sites.write_cr3),
            _ => return Err(GuardError::Policy("type-3 gate is for vmrun/mov-cr3")),
        };
        let tspan = plat.machine.span_open(
            SpanKind::Gate,
            "gate:type3",
            &[("op", ArgValue::Str(privop_label(&op)))],
        );
        let span = plat.machine.cycles.enter(CycleCategory::Gates);
        let result = (|| {
            let m = &mut plat.machine;
            m.exec_priv(self.sites.cli, PrivOp::Cli)?;
            m.cycles.charge(m.cost.stack_switch + m.cost.gate_dispatch);

            // Map the page in: one PTE write (gate-internal privileged write)
            // plus a TLB-entry flush for mapping freshness.
            {
                let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
                use fidelius_hw::paging::PtAccess;
                acc.write_entry(mapping.leaf_entry_pa, mapping.mapped_pte)
                    .map_err(GuardError::Hw)?;
            }
            plat.machine.cycles.charge(plat.machine.cost.cached_word_write);
            plat.machine.exec_priv(self.sites.invlpg, PrivOp::Invlpg(mapping.page_va))?;
            plat.machine.cycles.charge(plat.machine.cost.sanity_check);

            let result = plat.machine.exec_priv(site, op);

            // Withdraw the mapping regardless of the outcome.
            {
                let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
                use fidelius_hw::paging::PtAccess;
                acc.write_entry(mapping.leaf_entry_pa, 0).map_err(GuardError::Hw)?;
            }
            plat.machine.cycles.charge(plat.machine.cost.cached_word_write);
            // After VMRUN the CPU is in guest mode; the flush instruction has
            // conceptually already executed on the way in — charge it, and
            // only execute it architecturally when still in host mode.
            if plat.machine.cpu.mode == fidelius_hw::cpu::Mode::Host {
                plat.machine.exec_priv(self.sites.invlpg, PrivOp::Invlpg(mapping.page_va))?;
                plat.machine.cycles.charge(plat.machine.cost.sanity_check);
                plat.machine.exec_priv(self.sites.sti, PrivOp::Sti)?;
            } else {
                plat.machine
                    .cycles
                    .charge_as(CycleCategory::Paging, plat.machine.cost.tlb_flush_entry);
                plat.machine.cycles.charge(plat.machine.cost.sanity_check + plat.machine.cost.sti);
            }
            plat.machine
                .cycles
                .charge(plat.machine.cost.stack_switch + plat.machine.cost.gate_dispatch);
            result.map_err(GuardError::from)
        })();
        plat.machine.cycles.exit(span);
        plat.machine.span_close(tspan);
        plat.machine.trace.emit(Event::Gate { kind: GateKind::Type3, op: privop_label(&op) });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::boot_encrypted_guest;
    use crate::Fidelius;
    use fidelius_hw::inject::FaultInjector;
    use fidelius_sev::GuestOwner;
    use fidelius_xen::{DomainId, System};

    /// Fires `DelayGate` at the next `n` gate-entry crossings.
    #[derive(Debug)]
    struct Delays(u32);

    impl FaultInjector for Delays {
        fn decide(&mut self, point: InjectPoint) -> Option<FaultAction> {
            if point == InjectPoint::GateEntry && self.0 > 0 {
                self.0 -= 1;
                return Some(FaultAction::DelayGate { ticks: 7 });
            }
            None
        }
    }

    fn booted() -> (System, DomainId) {
        let mut sys = System::new(32 * 1024 * 1024, 5, Box::new(Fidelius::new())).unwrap();
        let mut owner = GuestOwner::new(5);
        let image = owner.package_image(b"gate kernel", &sys.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut sys, &image, 192).unwrap();
        sys.ensure_host().unwrap();
        (sys, dom)
    }

    #[test]
    fn delayed_gate_within_budget_is_tolerated_with_retries() {
        let (mut sys, dom) = booted();
        sys.plat.machine.trace.clear();
        sys.plat.machine.inject.install(Box::new(Delays(GATE_RETRY_MAX)));
        sys.ensure_guest(dom).unwrap();
        sys.plat.machine.inject.clear();
        let events = sys.plat.machine.trace.events();
        assert!(
            events.iter().any(|t| matches!(
                t.event,
                Event::FaultOutcome {
                    kind: FaultKind::DelayedGate,
                    outcome: InjectionOutcome::ToleratedAfterRetry(n),
                } if n == GATE_RETRY_MAX
            )),
            "expected a tolerated-after-retry disposal, got {events:?}"
        );
    }

    #[test]
    fn delayed_gate_beyond_budget_fails_closed_with_typed_reason() {
        let (mut sys, dom) = booted();
        sys.plat.machine.trace.clear();
        sys.plat.machine.inject.install(Box::new(Delays(GATE_RETRY_MAX + 1)));
        assert!(sys.ensure_guest(dom).is_err(), "exhausted retry budget must refuse the gate");
        sys.plat.machine.inject.clear();
        let events = sys.plat.machine.trace.events();
        assert!(
            events.iter().any(|t| matches!(
                t.event,
                Event::Denial { reason: DenialReason::GateResponseTimeout }
            )),
            "fail-closed gate must land on the audit trail"
        );
        assert!(events.iter().any(|t| matches!(
            t.event,
            Event::FaultOutcome {
                kind: FaultKind::DelayedGate,
                outcome: InjectionOutcome::FailClosed(DenialReason::GateResponseTimeout),
            }
        )));
        // The stall was transient and fully absorbed: the retry succeeds.
        sys.ensure_guest(dom).unwrap();
    }
}
