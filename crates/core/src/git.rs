//! The Grant Information Table (GIT).
//!
//! Per paper §5.2: an array of grant-information entries, each recording
//! the **initiator domain id, the target domain id, the shared memory
//! address and the number of page frames** — plus the intended permission.
//! A guest registers its sharing intent through the `pre_sharing_op`
//! hypercall *before* the hypervisor creates grant-table entries; when the
//! (write-protected) grant table is then updated through the type-1 gate,
//! Fidelius checks the new entry against the GIT, defeating the
//! grant-manipulation attacks of §2.2 (wrong grantee, escalated
//! permissions, fabricated grants).

use fidelius_xen::domain::DomainId;

/// One registered sharing intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GitEntry {
    /// The sharing (owning) domain.
    pub initiator: DomainId,
    /// The intended receiving domain.
    pub target: DomainId,
    /// First shared guest-physical page (of the initiator).
    pub gpa_page: u64,
    /// Number of consecutive pages shared.
    pub nframes: u64,
    /// Whether the target may write.
    pub writable: bool,
}

impl GitEntry {
    /// Whether this intent covers `(initiator, target, gpa_page)` with at
    /// most the registered permission.
    pub fn covers(
        &self,
        initiator: DomainId,
        target: DomainId,
        gpa_page: u64,
        writable: bool,
    ) -> bool {
        self.initiator == initiator
            && self.target == target
            && gpa_page >= self.gpa_page
            && gpa_page < self.gpa_page + self.nframes
            && (!writable || self.writable)
    }
}

/// The grant information table.
#[derive(Debug, Default)]
pub struct Git {
    entries: Vec<GitEntry>,
}

impl Git {
    /// Empty table.
    pub fn new() -> Self {
        Git::default()
    }

    /// Registers a sharing intent (the `pre_sharing_op` handler).
    pub fn register(&mut self, entry: GitEntry) {
        self.entries.push(entry);
    }

    /// Checks whether a grant-table entry with these parameters is
    /// authorized by some registered intent.
    pub fn authorizes(
        &self,
        initiator: DomainId,
        target: DomainId,
        gpa_page: u64,
        writable: bool,
    ) -> bool {
        self.entries.iter().any(|e| e.covers(initiator, target, gpa_page, writable))
    }

    /// Drops every intent involving `dom` (domain teardown).
    pub fn remove_domain(&mut self, dom: DomainId) {
        self.entries.retain(|e| e.initiator != dom && e.target != dom);
    }

    /// Number of registered intents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> GitEntry {
        GitEntry {
            initiator: DomainId(1),
            target: DomainId(2),
            gpa_page: 100,
            nframes: 4,
            writable: false,
        }
    }

    #[test]
    fn covers_range_and_permission() {
        let e = entry();
        assert!(e.covers(DomainId(1), DomainId(2), 100, false));
        assert!(e.covers(DomainId(1), DomainId(2), 103, false));
        assert!(!e.covers(DomainId(1), DomainId(2), 104, false), "past the range");
        assert!(!e.covers(DomainId(1), DomainId(2), 99, false));
        // Read-only intent does not authorize writable grants — the
        // permission-escalation attack.
        assert!(!e.covers(DomainId(1), DomainId(2), 100, true));
        // Wrong target — the conspirator-VM attack.
        assert!(!e.covers(DomainId(1), DomainId(3), 100, false));
        // Wrong initiator — fabricated grants.
        assert!(!e.covers(DomainId(9), DomainId(2), 100, false));
    }

    #[test]
    fn writable_intent_authorizes_both() {
        let e = GitEntry { writable: true, ..entry() };
        assert!(e.covers(DomainId(1), DomainId(2), 100, true));
        assert!(e.covers(DomainId(1), DomainId(2), 100, false));
    }

    #[test]
    fn git_register_and_authorize() {
        let mut git = Git::new();
        assert!(!git.authorizes(DomainId(1), DomainId(2), 100, false));
        git.register(entry());
        assert!(git.authorizes(DomainId(1), DomainId(2), 100, false));
        assert_eq!(git.len(), 1);
    }

    #[test]
    fn remove_domain_clears_both_roles() {
        let mut git = Git::new();
        git.register(entry());
        git.register(GitEntry {
            initiator: DomainId(3),
            target: DomainId(1),
            gpa_page: 0,
            nframes: 1,
            writable: true,
        });
        git.remove_domain(DomainId(1));
        assert!(git.is_empty());
    }
}
