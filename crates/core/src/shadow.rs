//! VMCB and register shadowing with exit-reason-based masking
//! (paper §4.2.1 / §5.1 — the "software version of SEV-ES").
//!
//! On every #VMEXIT Fidelius copies the VMCB and GPRs into private memory
//! (the *shadow*), then masks the in-memory VMCB and the live registers so
//! the hypervisor sees only the fields it needs for this exit reason.
//! Before VMRUN, the (possibly hypervisor-modified) VMCB is diffed against
//! the shadow: modifications outside the per-exit-reason *allowed set* are
//! integrity violations; allowed updates are validated (e.g. RIP may only
//! advance past the exited instruction) and merged; the registers are
//! overwritten from the shadow.

use fidelius_hw::regs::Gpr;
use fidelius_hw::vmcb::{ExitCode, VmcbField, VmcbImage, ALL_FIELDS};

/// Per-exit-reason visibility and writability policy.
#[derive(Debug, Clone)]
pub struct ExitPolicy {
    /// VMCB fields left visible (unmasked) to the hypervisor.
    pub visible_fields: Vec<VmcbField>,
    /// VMCB fields the hypervisor may legitimately update before re-entry.
    pub writable_fields: Vec<VmcbField>,
    /// GPRs left visible.
    pub visible_gprs: Vec<Gpr>,
    /// GPRs whose hypervisor-written values are merged back into the guest.
    pub writable_gprs: Vec<Gpr>,
    /// Instruction length for the RIP-advance check (0 = RIP not
    /// writable).
    pub insn_len: u64,
}

/// Control fields are always visible (the hypervisor legitimately reads
/// them) but never writable behind Fidelius's back.
const CONTROL_FIELDS: [VmcbField; 5] = [
    VmcbField::Intercepts,
    VmcbField::Asid,
    VmcbField::NpEnable,
    VmcbField::NCr3,
    VmcbField::SevEnable,
];

/// Returns the masking/verification policy for an exit reason, following
/// §5.1: e.g. for CPUID "all states are masked except for specific four
/// registers" and "only those four registers can be updated by the
/// hypervisor"; for a nested page fault "mask all guest states since the
/// fault address used by hypervisor is in the exitinfo field".
pub fn policy_for(exit: ExitCode) -> ExitPolicy {
    let mut base_visible: Vec<VmcbField> = CONTROL_FIELDS.to_vec();
    base_visible.extend([VmcbField::ExitCode, VmcbField::ExitInfo1, VmcbField::ExitInfo2]);
    match exit {
        ExitCode::Cpuid => ExitPolicy {
            visible_fields: with(base_visible, &[VmcbField::Rip, VmcbField::Rax]),
            writable_fields: vec![VmcbField::Rip, VmcbField::Rax],
            visible_gprs: vec![Gpr::Rax, Gpr::Rbx, Gpr::Rcx, Gpr::Rdx],
            writable_gprs: vec![Gpr::Rax, Gpr::Rbx, Gpr::Rcx, Gpr::Rdx],
            insn_len: 2,
        },
        ExitCode::Vmmcall => ExitPolicy {
            visible_fields: with(base_visible, &[VmcbField::Rip, VmcbField::Rax]),
            writable_fields: vec![VmcbField::Rip, VmcbField::Rax],
            visible_gprs: vec![Gpr::Rax, Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::R10],
            writable_gprs: vec![Gpr::Rax],
            insn_len: 3,
        },
        ExitCode::NestedPageFault => ExitPolicy {
            // All guest state masked; the fault address is in exitinfo.
            visible_fields: base_visible,
            writable_fields: vec![],
            visible_gprs: vec![],
            writable_gprs: vec![],
            insn_len: 0,
        },
        ExitCode::Hlt | ExitCode::Intr | ExitCode::Shutdown => ExitPolicy {
            visible_fields: base_visible,
            writable_fields: if exit == ExitCode::Hlt { vec![VmcbField::Rip] } else { vec![] },
            visible_gprs: vec![],
            writable_gprs: vec![],
            insn_len: if exit == ExitCode::Hlt { 1 } else { 0 },
        },
        ExitCode::Msr => ExitPolicy {
            visible_fields: with(base_visible, &[VmcbField::Rip, VmcbField::Rax]),
            writable_fields: vec![VmcbField::Rip, VmcbField::Rax],
            visible_gprs: vec![Gpr::Rax, Gpr::Rcx, Gpr::Rdx],
            writable_gprs: vec![Gpr::Rax, Gpr::Rdx],
            insn_len: 2,
        },
        ExitCode::IoPort => ExitPolicy {
            visible_fields: with(base_visible, &[VmcbField::Rip, VmcbField::Rax]),
            writable_fields: vec![VmcbField::Rip, VmcbField::Rax],
            visible_gprs: vec![Gpr::Rax, Gpr::Rdx],
            writable_gprs: vec![Gpr::Rax],
            insn_len: 2,
        },
    }
}

fn with(mut base: Vec<VmcbField>, extra: &[VmcbField]) -> Vec<VmcbField> {
    base.extend_from_slice(extra);
    base
}

/// The private shadow of one domain's guest state.
#[derive(Debug, Clone)]
pub struct ShadowCtx {
    /// Full VMCB as the guest left it.
    pub vmcb: VmcbImage,
    /// Full GPRs as the guest left them.
    pub gprs: [u64; 16],
    /// The exit reason that produced this shadow.
    pub exit: ExitCode,
}

/// The outcome of verifying a VMCB against its shadow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No illegal modification; the merged image to run is returned.
    Clean(Box<VmcbImage>),
    /// A field outside the allowed set was modified.
    IllegalField(VmcbField),
    /// RIP was updated to something other than "advance past the exited
    /// instruction".
    BadRipAdvance {
        /// RIP in the shadow.
        expected: u64,
        /// RIP the hypervisor wrote.
        got: u64,
    },
}

impl ShadowCtx {
    /// Captures a shadow (the exit-side half).
    pub fn capture(vmcb: VmcbImage, gprs: [u64; 16], exit: ExitCode) -> Self {
        ShadowCtx { vmcb, gprs, exit }
    }

    /// Produces the masked VMCB image that the hypervisor is allowed to
    /// see for this exit reason.
    pub fn masked_vmcb(&self) -> VmcbImage {
        let pol = policy_for(self.exit);
        let mut img = self.vmcb;
        img.mask_except(&pol.visible_fields);
        img
    }

    /// Produces the masked register file visible to the hypervisor.
    pub fn masked_gprs(&self) -> [u64; 16] {
        let pol = policy_for(self.exit);
        let mut out = [0u64; 16];
        for g in pol.visible_gprs {
            out[g as usize] = self.gprs[g as usize];
        }
        out
    }

    /// Verifies the VMCB the hypervisor hands back and, if legal, merges
    /// the allowed updates into the shadow to produce the image to run.
    ///
    /// `current` is the in-memory VMCB after the hypervisor handled the
    /// exit; it is diffed against the *masked* image the hypervisor was
    /// given.
    pub fn verify_and_merge(&self, current: &VmcbImage) -> Verdict {
        let pol = policy_for(self.exit);
        let baseline = self.masked_vmcb();
        let mut merged = self.vmcb;
        for f in ALL_FIELDS {
            let new = current.get(f);
            if new == baseline.get(f) {
                continue; // untouched
            }
            if !pol.writable_fields.contains(&f) {
                return Verdict::IllegalField(f);
            }
            if f == VmcbField::Rip {
                let expected = self.vmcb.get(VmcbField::Rip) + pol.insn_len;
                if pol.insn_len == 0 || new != expected {
                    return Verdict::BadRipAdvance { expected, got: new };
                }
            }
            merged.set(f, new);
        }
        Verdict::Clean(Box::new(merged))
    }

    /// The register file to hand back to the guest: the shadow, with the
    /// hypervisor's values merged for the exit reason's writable GPRs.
    pub fn merged_gprs(&self, hypervisor_regs: &[u64; 16]) -> [u64; 16] {
        let pol = policy_for(self.exit);
        let mut out = self.gprs;
        for g in pol.writable_gprs {
            out[g as usize] = hypervisor_regs[g as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vmcb() -> VmcbImage {
        let mut v = VmcbImage::new();
        v.set(VmcbField::Rip, 0x1000)
            .set(VmcbField::Rax, 7)
            .set(VmcbField::Cr3, 0x8000)
            .set(VmcbField::Asid, 3)
            .set(VmcbField::ExitCode, ExitCode::Vmmcall as u64);
        v
    }

    fn gprs_with(vals: &[(Gpr, u64)]) -> [u64; 16] {
        let mut g = [0u64; 16];
        for (r, v) in vals {
            g[*r as usize] = *v;
        }
        g
    }

    #[test]
    fn masking_hides_secret_state() {
        let sh = ShadowCtx::capture(
            sample_vmcb(),
            gprs_with(&[(Gpr::Rbx, 0x5EC), (Gpr::Rax, 1)]),
            ExitCode::NestedPageFault,
        );
        let masked = sh.masked_vmcb();
        assert_eq!(masked.get(VmcbField::Rip), 0, "guest RIP hidden on NPF");
        assert_eq!(masked.get(VmcbField::Cr3), 0, "guest CR3 hidden");
        assert_eq!(masked.get(VmcbField::Asid), 3, "control fields visible");
        let regs = sh.masked_gprs();
        assert_eq!(regs[Gpr::Rbx as usize], 0, "all GPRs hidden on NPF");
    }

    #[test]
    fn vmmcall_exposes_hypercall_abi_only() {
        let sh = ShadowCtx::capture(
            sample_vmcb(),
            gprs_with(&[(Gpr::Rax, 2), (Gpr::Rdi, 11), (Gpr::Rbx, 0x5EC)]),
            ExitCode::Vmmcall,
        );
        let regs = sh.masked_gprs();
        assert_eq!(regs[Gpr::Rax as usize], 2);
        assert_eq!(regs[Gpr::Rdi as usize], 11);
        assert_eq!(regs[Gpr::Rbx as usize], 0, "non-ABI register hidden");
    }

    #[test]
    fn untouched_vmcb_verifies_clean() {
        let sh = ShadowCtx::capture(sample_vmcb(), [0; 16], ExitCode::Vmmcall);
        let handed = sh.masked_vmcb();
        match sh.verify_and_merge(&handed) {
            Verdict::Clean(m) => {
                // The merged image restores the hidden fields.
                assert_eq!(m.get(VmcbField::Cr3), 0x8000);
                assert_eq!(m.get(VmcbField::Rip), 0x1000);
            }
            v => panic!("expected clean, got {v:?}"),
        }
    }

    #[test]
    fn legal_rip_advance_is_merged() {
        let sh = ShadowCtx::capture(sample_vmcb(), [0; 16], ExitCode::Vmmcall);
        let mut handed = sh.masked_vmcb();
        handed.set(VmcbField::Rip, 0x1003); // +3 = VMMCALL length
        handed.set(VmcbField::Rax, 0xFF); // return value
        match sh.verify_and_merge(&handed) {
            Verdict::Clean(m) => {
                assert_eq!(m.get(VmcbField::Rip), 0x1003);
                assert_eq!(m.get(VmcbField::Rax), 0xFF);
                assert_eq!(m.get(VmcbField::Cr3), 0x8000, "hidden fields restored");
            }
            v => panic!("expected clean, got {v:?}"),
        }
    }

    #[test]
    fn bad_rip_jump_is_rejected() {
        let sh = ShadowCtx::capture(sample_vmcb(), [0; 16], ExitCode::Vmmcall);
        let mut handed = sh.masked_vmcb();
        handed.set(VmcbField::Rip, 0xDEAD_0000); // divert guest control flow
        assert!(matches!(sh.verify_and_merge(&handed), Verdict::BadRipAdvance { .. }));
    }

    #[test]
    fn cr3_tamper_is_rejected() {
        let sh = ShadowCtx::capture(sample_vmcb(), [0; 16], ExitCode::Vmmcall);
        let mut handed = sh.masked_vmcb();
        handed.set(VmcbField::Cr3, 0x6666_0000); // point guest at attacker tables
        assert_eq!(sh.verify_and_merge(&handed), Verdict::IllegalField(VmcbField::Cr3));
    }

    #[test]
    fn asid_tamper_is_rejected() {
        // The key-sharing abuse: run the guest under another ASID.
        let sh = ShadowCtx::capture(sample_vmcb(), [0; 16], ExitCode::NestedPageFault);
        let mut handed = sh.masked_vmcb();
        handed.set(VmcbField::Asid, 9);
        assert_eq!(sh.verify_and_merge(&handed), Verdict::IllegalField(VmcbField::Asid));
    }

    #[test]
    fn sev_disable_is_rejected() {
        // The "disable protection completely" attack from §2.2.
        let mut vmcb = sample_vmcb();
        vmcb.set(VmcbField::SevEnable, 1);
        let sh = ShadowCtx::capture(vmcb, [0; 16], ExitCode::Hlt);
        let mut handed = sh.masked_vmcb();
        handed.set(VmcbField::SevEnable, 0);
        assert_eq!(sh.verify_and_merge(&handed), Verdict::IllegalField(VmcbField::SevEnable));
    }

    #[test]
    fn gpr_merge_takes_only_allowed() {
        let sh = ShadowCtx::capture(
            sample_vmcb(),
            gprs_with(&[(Gpr::Rbx, 0x111), (Gpr::Rax, 0x222)]),
            ExitCode::Vmmcall,
        );
        let hv = gprs_with(&[(Gpr::Rax, 0x999), (Gpr::Rbx, 0x666)]);
        let merged = sh.merged_gprs(&hv);
        assert_eq!(merged[Gpr::Rax as usize], 0x999, "hypercall return merged");
        assert_eq!(merged[Gpr::Rbx as usize], 0x111, "other registers restored");
    }

    #[test]
    fn npf_allows_no_writes_at_all() {
        let sh = ShadowCtx::capture(sample_vmcb(), [0; 16], ExitCode::NestedPageFault);
        let mut handed = sh.masked_vmcb();
        handed.set(VmcbField::Rip, 0x1002);
        assert!(matches!(sh.verify_and_merge(&handed), Verdict::IllegalField(VmcbField::Rip)));
    }
}
