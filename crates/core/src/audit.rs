//! The audit log (paper §5.3: on a write-forbidding violation, Fidelius
//! will "simply impede the write operation, and log this operation for
//! further auditing").
//!
//! Every policy rejection and integrity violation Fidelius makes is
//! recorded with what was attempted and why it was refused; a cloud
//! operator (or the guest owner, via attestation-protected channels)
//! reads this to detect a compromised hypervisor probing its boundaries.

use std::collections::VecDeque;
use std::fmt;

/// What kind of event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditKind {
    /// A PIT policy rejected a mapping update.
    PitViolation,
    /// A GIT policy rejected a grant operation.
    GitViolation,
    /// A privileged-instruction policy rejected an operand.
    InstrViolation,
    /// VMCB/register integrity verification failed at the entry boundary.
    IntegrityViolation,
    /// A write-once / execute-once policy latched.
    OnceViolation,
    /// Any other policy denial.
    Other,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditKind::PitViolation => "pit",
            AuditKind::GitViolation => "git",
            AuditKind::InstrViolation => "instr",
            AuditKind::IntegrityViolation => "integrity",
            AuditKind::OnceViolation => "once",
            AuditKind::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Classification.
    pub kind: AuditKind,
    /// Why the operation was refused.
    pub reason: &'static str,
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} [{}] {}", self.seq, self.kind, self.reason)
    }
}

/// A bounded in-(protected-)memory audit log.
#[derive(Debug)]
pub struct AuditLog {
    events: VecDeque<AuditEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl AuditLog {
    /// A log keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "audit log needs capacity");
        AuditLog { events: VecDeque::with_capacity(capacity), capacity, next_seq: 0, dropped: 0 }
    }

    /// Records an event, evicting the oldest when full.
    pub fn record(&mut self, kind: AuditKind, reason: &'static str) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(AuditEvent { seq: self.next_seq, kind, reason });
        self.next_seq += 1;
    }

    /// Iterates the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AuditEvent> {
        self.events.iter()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of retained events of a kind.
    pub fn count(&self, kind: AuditKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// Classifies a denial reason string into an [`AuditKind`] (reasons are
/// the static strings Fidelius's policies emit).
pub fn classify(reason: &str) -> AuditKind {
    if reason.contains("grant") || reason.contains("pre_sharing") {
        AuditKind::GitViolation
    } else if reason.contains("CR0")
        || reason.contains("CR3")
        || reason.contains("CR4")
        || reason.contains("SMEP")
        || reason.contains("NXE")
        || reason.contains("SVME")
        || reason.contains("VMRUN")
        || reason.contains("vmrun")
    {
        AuditKind::InstrViolation
    } else if reason.contains("once") {
        AuditKind::OnceViolation
    } else if reason.contains("tampered")
        || reason.contains("mismatch")
        || reason.contains("diverted")
    {
        AuditKind::IntegrityViolation
    } else if reason.contains("page") || reason.contains("frame") || reason.contains("NPT")
        || reason.contains("PIT") || reason.contains("replay") || reason.contains("mappable")
    {
        AuditKind::PitViolation
    } else {
        AuditKind::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut log = AuditLog::new(4);
        log.record(AuditKind::PitViolation, "mapping violates PIT policy");
        log.record(AuditKind::GitViolation, "grant not authorized");
        assert_eq!(log.total(), 2);
        assert_eq!(log.count(AuditKind::PitViolation), 1);
        let first = log.iter().next().unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(first.to_string(), "#0 [pit] mapping violates PIT policy");
    }

    #[test]
    fn bounded_with_eviction() {
        let mut log = AuditLog::new(2);
        for _ in 0..5 {
            log.record(AuditKind::Other, "x");
        }
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 3);
        let seqs: Vec<u64> = log.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn classification_heuristics() {
        assert_eq!(classify("grant not authorized by pre_sharing (GIT)"), AuditKind::GitViolation);
        assert_eq!(classify("CR0.WP cannot be cleared"), AuditKind::InstrViolation);
        assert_eq!(classify("remapping a populated GPA (replay)"), AuditKind::PitViolation);
        assert_eq!(classify("vmcb field tampered"), AuditKind::IntegrityViolation);
        assert_eq!(classify("write-once page already initialized"), AuditKind::OnceViolation);
        assert_eq!(classify("???"), AuditKind::Other);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = AuditLog::new(0);
    }
}
