//! The audit log (paper §5.3: on a write-forbidding violation, Fidelius
//! will "simply impede the write operation, and log this operation for
//! further auditing").
//!
//! Every policy rejection and integrity violation Fidelius makes is
//! recorded with what was attempted and why it was refused; a cloud
//! operator (or the guest owner, via attestation-protected channels)
//! reads this to detect a compromised hypervisor probing its boundaries.
//!
//! The log is a thin consumer of the telemetry event stream: denials are
//! emitted as [`Event::Denial`] through the tracer and the same typed
//! [`DenialReason`] is recorded here via [`AuditLog::ingest`] — the ring
//! buffer, the metrics registry and the audit log can never disagree about
//! what was refused.

use std::collections::VecDeque;
use std::fmt;

pub use fidelius_telemetry::{AuditKind, DenialReason};
use fidelius_telemetry::{Event, VerifyOutcome};

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Classification (always `reason.kind()`).
    pub kind: AuditKind,
    /// Why the operation was refused.
    pub reason: DenialReason,
}

impl AuditEvent {
    /// The legacy reason string (what `reason` used to store directly).
    pub fn reason_str(&self) -> &'static str {
        self.reason.as_str()
    }
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} [{}] {}", self.seq, self.kind, self.reason)
    }
}

/// A bounded in-(protected-)memory audit log.
#[derive(Debug)]
pub struct AuditLog {
    events: VecDeque<AuditEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl AuditLog {
    /// A log keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "audit log needs capacity");
        AuditLog { events: VecDeque::with_capacity(capacity), capacity, next_seq: 0, dropped: 0 }
    }

    /// Records a denial, evicting the oldest entry when full. The kind is
    /// derived from the reason — the two can no longer disagree.
    pub fn record(&mut self, reason: DenialReason) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(AuditEvent { seq: self.next_seq, kind: reason.kind(), reason });
        self.next_seq += 1;
    }

    /// Consumes one telemetry event, recording it when it is a denial
    /// (policy denial or failed shadow verification). Returns whether the
    /// event was recorded.
    pub fn ingest(&mut self, event: &Event) -> bool {
        match event {
            Event::Denial { reason } => {
                self.record(*reason);
                true
            }
            Event::ShadowVerify { outcome: VerifyOutcome::Tampered(reason), .. } => {
                self.record(*reason);
                true
            }
            _ => false,
        }
    }

    /// Iterates the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AuditEvent> {
        self.events.iter()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of retained events of a kind.
    pub fn count(&self, kind: AuditKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// Classifies a denial reason string into an [`AuditKind`] with substring
/// heuristics.
#[deprecated(
    note = "denials are typed now; use `DenialReason::kind()` instead of string classification"
)]
pub fn classify(reason: &str) -> AuditKind {
    if reason.contains("grant") || reason.contains("pre_sharing") {
        AuditKind::GitViolation
    } else if reason.contains("CR0")
        || reason.contains("CR3")
        || reason.contains("CR4")
        || reason.contains("SMEP")
        || reason.contains("NXE")
        || reason.contains("SVME")
        || reason.contains("VMRUN")
        || reason.contains("vmrun")
    {
        AuditKind::InstrViolation
    } else if reason.contains("once") {
        AuditKind::OnceViolation
    } else if reason.contains("tampered")
        || reason.contains("mismatch")
        || reason.contains("diverted")
    {
        AuditKind::IntegrityViolation
    } else if reason.contains("page")
        || reason.contains("frame")
        || reason.contains("NPT")
        || reason.contains("PIT")
        || reason.contains("replay")
        || reason.contains("mappable")
    {
        AuditKind::PitViolation
    } else {
        AuditKind::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut log = AuditLog::new(4);
        log.record(DenialReason::PitPolicyViolation);
        log.record(DenialReason::GrantNotAuthorized);
        assert_eq!(log.total(), 2);
        assert_eq!(log.count(AuditKind::PitViolation), 1);
        let first = log.iter().next().unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(first.to_string(), "#0 [pit] mapping violates PIT policy");
        assert_eq!(first.reason_str(), "mapping violates PIT policy");
    }

    #[test]
    fn bounded_with_eviction() {
        let mut log = AuditLog::new(2);
        for _ in 0..5 {
            log.record(DenialReason::Legacy("x"));
        }
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 3);
        let seqs: Vec<u64> = log.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn kind_is_derived_from_reason() {
        let mut log = AuditLog::new(8);
        log.record(DenialReason::GrantNotAuthorized);
        log.record(DenialReason::Cr0WpClear);
        log.record(DenialReason::RemapPopulatedGpa);
        log.record(DenialReason::VmcbFieldTampered);
        log.record(DenialReason::WriteOnceAlreadyInitialized);
        assert_eq!(log.count(AuditKind::GitViolation), 1);
        assert_eq!(log.count(AuditKind::InstrViolation), 1);
        assert_eq!(log.count(AuditKind::PitViolation), 1);
        assert_eq!(log.count(AuditKind::IntegrityViolation), 1);
        assert_eq!(log.count(AuditKind::OnceViolation), 1);
    }

    #[test]
    fn ingest_consumes_denials_only() {
        let mut log = AuditLog::new(8);
        assert!(log.ingest(&Event::Denial { reason: DenialReason::FrameNotMappable }));
        assert!(log.ingest(&Event::ShadowVerify {
            vmcb_pa: 0x1000,
            outcome: VerifyOutcome::Tampered(DenialReason::GuestRipDiverted),
        }));
        assert!(!log.ingest(&Event::Vmrun { asid: 1, sev: true }));
        assert_eq!(log.total(), 2);
        assert_eq!(log.count(AuditKind::IntegrityViolation), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn classification_heuristics_shim() {
        assert_eq!(classify("grant not authorized by pre_sharing (GIT)"), AuditKind::GitViolation);
        assert_eq!(classify("CR0.WP cannot be cleared"), AuditKind::InstrViolation);
        assert_eq!(classify("remapping a populated GPA (replay)"), AuditKind::PitViolation);
        assert_eq!(classify("vmcb field tampered"), AuditKind::IntegrityViolation);
        assert_eq!(classify("write-once page already initialized"), AuditKind::OnceViolation);
        assert_eq!(classify("???"), AuditKind::Other);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = AuditLog::new(0);
    }
}
