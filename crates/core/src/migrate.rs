//! SEV-based VM migration (paper §4.3.6).
//!
//! The source firmware re-encrypts guest memory from `Kvek` to the
//! transport key and computes an integrity tag; the target firmware — and
//! only the target, thanks to the ECDH-wrapped keys — reverses the
//! process under a freshly generated `Kvek`. The hypervisors on both
//! sides move only ciphertext. `SEND_START` stops guest execution, which
//! is why the paper notes Fidelius does not support *live* migration.

use crate::fidelius::Fidelius;
use crate::lifecycle::{fidelius_mut, traced_phase};
use fidelius_hw::inject::{FaultAction, InjectPoint};
use fidelius_hw::{Gpa, PAGE_SIZE};
use fidelius_sev::firmware::SessionBlob;
use fidelius_sev::{GuestPolicy, Handle};
use fidelius_telemetry::{DenialReason, Event, FaultKind, InjectionOutcome};
use fidelius_trace::SpanKind;
use fidelius_xen::domain::{DomainId, DomainState};
use fidelius_xen::frontend::gplayout;
use fidelius_xen::{System, XenError};

/// An in-flight migrated VM: transport-encrypted memory plus the session
/// needed to receive it.
#[derive(Debug, Clone)]
pub struct MigrationPackage {
    /// (guest page number, transport ciphertext) for every populated page.
    pub pages: Vec<(u64, Vec<u8>)>,
    /// Wrapped transport keys and ECDH metadata.
    pub session: SessionBlob,
    /// The transport integrity tag from `SEND_FINISH`.
    pub tag: [u8; 32],
    /// Memory size of the guest, in pages.
    pub mem_pages: u64,
    /// How many pages the source sent (carried in the authenticated stream
    /// header in the real protocol). Fewer pages than declared means the
    /// stream was truncated in transit; the receiver refuses it before
    /// committing any resources.
    pub declared_pages: u64,
}

/// Sends `dom` off this system, targeting the platform whose PDH is
/// `target_pdh`. The domain is destroyed locally afterwards (the paper's
/// non-live flow: the guest stops at `SEND_START`).
///
/// # Errors
///
/// Requires a Fidelius-booted SEV guest; SEV protocol failures propagate.
pub fn migrate_out(
    sys: &mut System,
    dom: DomainId,
    target_pdh: &[u8; 32],
) -> Result<MigrationPackage, XenError> {
    sys.ensure_host()?;
    let handle = fidelius_mut(sys)?.sev_handle(dom).ok_or(XenError::BadDomainState(dom))?;
    let mem_pages = sys.xen.domain(dom)?.mem_pages();
    let session = traced_phase(sys, SpanKind::MigratePhase, "migrate:send_start", |sys| {
        Ok(sys.plat.firmware.send_start(handle, target_pdh)?)
    })?;
    let pages = traced_phase(sys, SpanKind::MigratePhase, "migrate:send_pages", |sys| {
        let mut pages = Vec::new();
        for p in 0..mem_pages {
            if let Some(frame) = sys.xen.domain(dom)?.frame_of(p) {
                let ct =
                    sys.plat.firmware.send_update_page(&mut sys.plat.machine, handle, frame, p)?;
                pages.push((p, ct));
            }
        }
        Ok(pages)
    })?;
    let tag = traced_phase(sys, SpanKind::MigratePhase, "migrate:send_finish", |sys| {
        let tag = sys.plat.firmware.send_finish(handle)?;
        sys.shutdown_guest(dom)?;
        Ok(tag)
    })?;
    let declared_pages = pages.len() as u64;
    let mut package = MigrationPackage { pages, session, tag, mem_pages, declared_pages };
    // Adversarial hook: the hypervisor carries the stream and may shorten
    // or flip it in transit. Both land here (the stream is the
    // hypervisor's to move); the receiver's checks decide the outcome, and
    // the source emits the predicted disposal so injection and disposal
    // pair up even across machines.
    if let Some(action) = sys.plat.machine.inject_at(InjectPoint::MigrateSend) {
        tamper_stream(sys, &mut package, action);
    }
    Ok(package)
}

/// Applies an in-transit stream fault to `package`, emitting the predicted
/// outcome on the source tracer.
fn tamper_stream(sys: &mut System, package: &mut MigrationPackage, action: FaultAction) {
    let trace = &sys.plat.machine.trace;
    match action {
        FaultAction::TruncateStream { keep } => {
            let len = package.pages.len() as u64;
            let k = keep % (len + 1);
            if k < len {
                package.pages.truncate(k as usize);
                trace.emit(Event::FaultOutcome {
                    kind: FaultKind::MigrationTruncate,
                    outcome: InjectionOutcome::FailClosed(DenialReason::MigrationStreamTruncated),
                });
            } else {
                trace.emit(Event::FaultOutcome {
                    kind: FaultKind::MigrationTruncate,
                    outcome: InjectionOutcome::Tolerated,
                });
            }
        }
        FaultAction::CorruptStream { index_hint, xor } => {
            if package.pages.is_empty() {
                trace.emit(Event::FaultOutcome {
                    kind: FaultKind::MigrationCorrupt,
                    outcome: InjectionOutcome::Tolerated,
                });
                return;
            }
            let i = index_hint as usize % package.pages.len();
            let ct = &mut package.pages[i].1;
            let b = index_hint as usize % ct.len();
            ct[b] ^= xor | 1;
            trace.emit(Event::FaultOutcome {
                kind: FaultKind::MigrationCorrupt,
                outcome: InjectionOutcome::FailClosed(DenialReason::MigrationStreamTampered),
            });
        }
        other => {
            trace.emit(Event::FaultOutcome {
                kind: other.kind(),
                outcome: InjectionOutcome::Tolerated,
            });
        }
    }
}

/// Receives a migrated VM on this system: creates a domain, restores the
/// memory under a fresh `Kvek`, verifies the tag and resumes the guest
/// (whose migrated memory already contains its page tables).
///
/// # Errors
///
/// Fails on the wrong target platform or a tampered package.
pub fn migrate_in(sys: &mut System, package: &MigrationPackage) -> Result<DomainId, XenError> {
    // Structural check before any resource is committed: a stream shorter
    // than the source declared was truncated in transit.
    if (package.pages.len() as u64) != package.declared_pages {
        sys.plat
            .machine
            .trace
            .emit(Event::Denial { reason: DenialReason::MigrationStreamTruncated });
        return Err(XenError::FailClosed(DenialReason::MigrationStreamTruncated));
    }
    let handle = traced_phase(sys, SpanKind::MigratePhase, "migrate:receive_start", |sys| {
        match sys.plat.firmware.receive_start(&package.session, GuestPolicy::default()) {
            Ok(h) => Ok(h),
            Err(fidelius_sev::SevError::SessionNonceReplayed) => {
                // Rollback on the SEND path: the hypervisor re-presents a
                // session an earlier successful receive already consumed
                // (e.g. to resurrect a pre-update snapshot of the guest).
                sys.plat
                    .machine
                    .trace
                    .emit(Event::Denial { reason: DenialReason::MigrationSessionReplayed });
                Err(XenError::FailClosed(DenialReason::MigrationSessionReplayed))
            }
            Err(e) => Err(e.into()),
        }
    })?;
    let dom = sys.xen.create_domain(&mut sys.plat, &mut *sys.guardian, package.mem_pages)?;
    // From here on the receive is transactional: any failure rolls the
    // half-built domain back (frames freed, firmware state decommissioned)
    // so a tampered stream cannot leak a zombie guest on the target.
    match traced_phase(sys, SpanKind::MigratePhase, "migrate:receive_body", |sys| {
        receive_body(sys, package, handle, dom)
    }) {
        Ok(()) => Ok(dom),
        Err(e) => {
            rollback_receive(sys, dom, handle);
            if matches!(e, XenError::Sev(_)) {
                sys.plat
                    .machine
                    .trace
                    .emit(Event::Denial { reason: DenialReason::MigrationStreamTampered });
            }
            Err(e)
        }
    }
}

/// The fallible phase of [`migrate_in`]: everything between domain
/// creation and the sealed, runnable guest.
fn receive_body(
    sys: &mut System,
    package: &MigrationPackage,
    handle: Handle,
    dom: DomainId,
) -> Result<(), XenError> {
    sys.xen.populate_all(&mut sys.plat, &mut *sys.guardian, dom)?;
    for (p, ct) in &package.pages {
        let frame = sys.xen.domain(dom)?.frame_of(*p).ok_or(XenError::OutOfMemory)?;
        sys.plat.firmware.receive_update_page(&mut sys.plat.machine, handle, ct, *p, frame)?;
    }
    sys.plat.firmware.receive_finish(handle, &package.tag)?;
    let asid = sys.xen.domain(dom)?.asid;
    sys.plat.firmware.activate(&mut sys.plat.machine, handle, asid)?;
    // Only Fidelius takes the handle into its sealed metadata; a
    // vanilla-firmware destination leaves it hypervisor-managed.
    if let Ok(f) = fidelius_mut(sys) {
        f.register_sev_handle(dom, handle);
    }

    // The migrated memory contains the guest's page tables; point the
    // VMCB at them and resume at the kernel entry.
    let gcr3 = Gpa(gplayout::PT_POOL_PAGE * PAGE_SIZE);
    let rip = gplayout::KERNEL_PAGE * PAGE_SIZE;
    sys.xen.init_vmcb(&mut sys.plat, dom, gcr3, rip, true)?;
    sys.xen.domain_mut(dom)?.state = DomainState::Ready;
    let d = sys.xen.domain(dom)?;
    sys.guardian.seal_guest(&mut sys.plat, d)?;
    Ok(())
}

/// Unwinds a failed receive: the domain (with its frames, grants and
/// events) and the firmware's transport context both go away. Best-effort
/// by design — the guardian's own teardown may already have decommissioned
/// the handle when it was registered before the failure.
fn rollback_receive(sys: &mut System, dom: DomainId, handle: Handle) {
    let _ = sys.xen.destroy_domain(&mut sys.plat, &mut *sys.guardian, dom);
    let _ = sys.plat.firmware.deactivate(&mut sys.plat.machine, handle);
    let _ = sys.plat.firmware.decommission(handle);
}

/// Convenience for tests/benches: a Fidelius system ready for migration.
pub fn protected_system(dram: u64, seed: u64) -> Result<System, XenError> {
    System::new(dram, seed, Box::new(Fidelius::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::boot_encrypted_guest;
    use fidelius_sev::GuestOwner;

    const DRAM: u64 = 32 * 1024 * 1024;

    #[test]
    fn migration_moves_guest_secrets_intact() {
        let mut src = protected_system(DRAM, 31).unwrap();
        let mut dst = protected_system(DRAM, 32).unwrap();

        let mut owner = GuestOwner::new(33);
        let image = owner.package_image(b"migratable kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 256).unwrap();

        // The guest stores a secret in its private heap.
        let gpa = Gpa(gplayout::HEAP_PAGE * PAGE_SIZE);
        src.gpa_write(dom, gpa, b"secret-to-travel", true).unwrap();
        src.ensure_host().unwrap();

        let package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();
        // Transport pages are ciphertext.
        let heap_ct = package
            .pages
            .iter()
            .find(|(p, _)| *p == gplayout::HEAP_PAGE)
            .map(|(_, ct)| ct.clone())
            .unwrap();
        assert_ne!(&heap_ct[..16], b"secret-to-travel");

        let new_dom = migrate_in(&mut dst, &package).unwrap();
        dst.ensure_guest(new_dom).unwrap();
        let mut back = [0u8; 16];
        dst.plat.machine.guest_read_gpa(gpa, &mut back, true).unwrap();
        assert_eq!(&back, b"secret-to-travel");
    }

    #[test]
    fn tampered_package_is_rejected() {
        let mut src = protected_system(DRAM, 41).unwrap();
        let mut dst = protected_system(DRAM, 42).unwrap();
        let mut owner = GuestOwner::new(43);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let mut package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();
        package.pages[3].1[100] ^= 0xFF;
        assert!(matches!(migrate_in(&mut dst, &package), Err(XenError::Sev(_))));
    }

    #[test]
    fn truncated_stream_fails_closed_without_committing_resources() {
        let mut src = protected_system(DRAM, 61).unwrap();
        let mut dst = protected_system(DRAM, 62).unwrap();
        let mut owner = GuestOwner::new(63);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let gpa = Gpa(gplayout::HEAP_PAGE * PAGE_SIZE);
        src.gpa_write(dom, gpa, b"survives-retries", true).unwrap();
        src.ensure_host().unwrap();
        let good = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();

        // The hypervisor drops the tail of the stream in transit.
        let mut short = good.clone();
        short.pages.truncate(short.pages.len() / 2);
        let doms_before = dst.xen.domains.len();
        let err = migrate_in(&mut dst, &short);
        assert!(
            matches!(err, Err(XenError::FailClosed(DenialReason::MigrationStreamTruncated))),
            "expected typed fail-closed, got {err:?}"
        );
        assert_eq!(dst.xen.domains.len(), doms_before, "no domain may be committed");
        assert!(dst.plat.machine.trace.events().iter().any(|e| matches!(
            e.event,
            fidelius_telemetry::Event::Denial { reason: DenialReason::MigrationStreamTruncated }
        )));

        // Graceful degradation: the intact stream still lands afterwards.
        let new_dom = migrate_in(&mut dst, &good).unwrap();
        dst.ensure_guest(new_dom).unwrap();
        let mut back = [0u8; 16];
        dst.plat.machine.guest_read_gpa(gpa, &mut back, true).unwrap();
        assert_eq!(&back, b"survives-retries");
    }

    #[test]
    fn tampered_stream_rolls_back_partial_receive() {
        let mut src = protected_system(DRAM, 71).unwrap();
        let mut dst = protected_system(DRAM, 72).unwrap();
        let mut owner = GuestOwner::new(73);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let good = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();
        let mut bad = good.clone();
        bad.pages[3].1[100] ^= 0xFF;
        assert!(matches!(migrate_in(&mut dst, &bad), Err(XenError::Sev(_))));
        // Transactional rollback: every half-built domain is torn down and
        // the tamper is audited.
        assert!(dst.xen.domains.values().all(|d| d.state == DomainState::Dead));
        assert!(dst.plat.machine.trace.events().iter().any(|e| matches!(
            e.event,
            fidelius_telemetry::Event::Denial { reason: DenialReason::MigrationStreamTampered }
        )));
        // The frames freed by the rollback suffice for the intact stream.
        let new_dom = migrate_in(&mut dst, &good).unwrap();
        assert!(dst.ensure_guest(new_dom).is_ok());
    }

    /// SEND-side rollback: once a package is admitted, replaying it must
    /// be refused with a typed reason — the hypervisor cannot resurrect a
    /// pre-migration snapshot of the guest on retrofitted firmware.
    #[test]
    fn migration_replay_refused_on_retrofit_firmware() {
        let mut src = protected_system(DRAM, 81).unwrap();
        let mut dst = protected_system(DRAM, 82).unwrap();
        let mut owner = GuestOwner::new(83);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();

        let first = migrate_in(&mut dst, &package).unwrap();
        dst.ensure_guest(first).unwrap();
        dst.ensure_host().unwrap();

        let doms_before = dst.xen.domains.len();
        let err = migrate_in(&mut dst, &package);
        assert!(
            matches!(err, Err(XenError::FailClosed(DenialReason::MigrationSessionReplayed))),
            "expected typed fail-closed, got {err:?}"
        );
        assert_eq!(dst.xen.domains.len(), doms_before, "replay must not commit a domain");
        assert!(dst.plat.machine.trace.events().iter().any(|e| matches!(
            e.event,
            fidelius_telemetry::Event::Denial { reason: DenialReason::MigrationSessionReplayed }
        )));
    }

    /// The same replay sails through vanilla SEV firmware: no nonce
    /// ledger, so the stale session is accepted as often as the
    /// hypervisor presents it.
    #[test]
    fn migration_replay_accepted_on_vanilla_firmware() {
        let mut src = protected_system(DRAM, 84).unwrap();
        let mut dst = System::new_with_firmware(
            DRAM,
            85,
            fidelius_sev::FwMode::Vanilla,
            Box::new(fidelius_xen::guardian::Unprotected::new()),
        )
        .unwrap();
        let mut owner = GuestOwner::new(86);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();

        let first = migrate_in(&mut dst, &package).unwrap();
        let second = migrate_in(&mut dst, &package).unwrap();
        assert_ne!(first, second, "the replayed guest gets its own domain");
    }

    #[test]
    fn package_for_wrong_target_is_rejected() {
        let mut src = protected_system(DRAM, 51).unwrap();
        let dst = protected_system(DRAM, 52).unwrap();
        let mut third = protected_system(DRAM, 53).unwrap();
        let mut owner = GuestOwner::new(54);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();
        // The hypervisor redirects the package to a colluding machine —
        // which cannot unwrap the transport keys.
        assert!(matches!(migrate_in(&mut third, &package), Err(XenError::Sev(_))));
    }
}
