//! SEV-based VM migration (paper §4.3.6).
//!
//! The source firmware re-encrypts guest memory from `Kvek` to the
//! transport key and computes an integrity tag; the target firmware — and
//! only the target, thanks to the ECDH-wrapped keys — reverses the
//! process under a freshly generated `Kvek`. The hypervisors on both
//! sides move only ciphertext. `SEND_START` stops guest execution, which
//! is why the paper notes Fidelius does not support *live* migration.

use crate::fidelius::Fidelius;
use crate::lifecycle::fidelius_mut;
use fidelius_hw::{Gpa, PAGE_SIZE};
use fidelius_sev::firmware::SessionBlob;
use fidelius_sev::GuestPolicy;
use fidelius_xen::domain::{DomainId, DomainState};
use fidelius_xen::frontend::gplayout;
use fidelius_xen::{System, XenError};

/// An in-flight migrated VM: transport-encrypted memory plus the session
/// needed to receive it.
#[derive(Debug, Clone)]
pub struct MigrationPackage {
    /// (guest page number, transport ciphertext) for every populated page.
    pub pages: Vec<(u64, Vec<u8>)>,
    /// Wrapped transport keys and ECDH metadata.
    pub session: SessionBlob,
    /// The transport integrity tag from `SEND_FINISH`.
    pub tag: [u8; 32],
    /// Memory size of the guest, in pages.
    pub mem_pages: u64,
}

/// Sends `dom` off this system, targeting the platform whose PDH is
/// `target_pdh`. The domain is destroyed locally afterwards (the paper's
/// non-live flow: the guest stops at `SEND_START`).
///
/// # Errors
///
/// Requires a Fidelius-booted SEV guest; SEV protocol failures propagate.
pub fn migrate_out(
    sys: &mut System,
    dom: DomainId,
    target_pdh: &[u8; 32],
) -> Result<MigrationPackage, XenError> {
    sys.ensure_host()?;
    let handle = fidelius_mut(sys)?.sev_handle(dom).ok_or(XenError::BadDomainState(dom))?;
    let mem_pages = sys.xen.domain(dom)?.mem_pages();
    let session = sys.plat.firmware.send_start(handle, target_pdh)?;
    let mut pages = Vec::new();
    for p in 0..mem_pages {
        if let Some(frame) = sys.xen.domain(dom)?.frame_of(p) {
            let ct = sys.plat.firmware.send_update_page(&mut sys.plat.machine, handle, frame, p)?;
            pages.push((p, ct));
        }
    }
    let tag = sys.plat.firmware.send_finish(handle)?;
    sys.shutdown_guest(dom)?;
    Ok(MigrationPackage { pages, session, tag, mem_pages })
}

/// Receives a migrated VM on this system: creates a domain, restores the
/// memory under a fresh `Kvek`, verifies the tag and resumes the guest
/// (whose migrated memory already contains its page tables).
///
/// # Errors
///
/// Fails on the wrong target platform or a tampered package.
pub fn migrate_in(sys: &mut System, package: &MigrationPackage) -> Result<DomainId, XenError> {
    let handle = sys.plat.firmware.receive_start(&package.session, GuestPolicy::default())?;
    let dom = sys.xen.create_domain(&mut sys.plat, &mut *sys.guardian, package.mem_pages)?;
    sys.xen.populate_all(&mut sys.plat, &mut *sys.guardian, dom)?;
    for (p, ct) in &package.pages {
        let frame = sys.xen.domain(dom)?.frame_of(*p).ok_or(XenError::OutOfMemory)?;
        sys.plat.firmware.receive_update_page(&mut sys.plat.machine, handle, ct, *p, frame)?;
    }
    sys.plat.firmware.receive_finish(handle, &package.tag)?;
    let asid = sys.xen.domain(dom)?.asid;
    sys.plat.firmware.activate(&mut sys.plat.machine, handle, asid)?;
    fidelius_mut(sys)?.register_sev_handle(dom, handle);

    // The migrated memory contains the guest's page tables; point the
    // VMCB at them and resume at the kernel entry.
    let gcr3 = Gpa(gplayout::PT_POOL_PAGE * PAGE_SIZE);
    let rip = gplayout::KERNEL_PAGE * PAGE_SIZE;
    sys.xen.init_vmcb(&mut sys.plat, dom, gcr3, rip, true)?;
    sys.xen.domain_mut(dom)?.state = DomainState::Ready;
    let d = sys.xen.domain(dom)?;
    sys.guardian.seal_guest(&mut sys.plat, d)?;
    Ok(dom)
}

/// Convenience for tests/benches: a Fidelius system ready for migration.
pub fn protected_system(dram: u64, seed: u64) -> Result<System, XenError> {
    System::new(dram, seed, Box::new(Fidelius::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::boot_encrypted_guest;
    use fidelius_sev::GuestOwner;

    const DRAM: u64 = 32 * 1024 * 1024;

    #[test]
    fn migration_moves_guest_secrets_intact() {
        let mut src = protected_system(DRAM, 31).unwrap();
        let mut dst = protected_system(DRAM, 32).unwrap();

        let mut owner = GuestOwner::new(33);
        let image = owner.package_image(b"migratable kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 256).unwrap();

        // The guest stores a secret in its private heap.
        let gpa = Gpa(gplayout::HEAP_PAGE * PAGE_SIZE);
        src.gpa_write(dom, gpa, b"secret-to-travel", true).unwrap();
        src.ensure_host().unwrap();

        let package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();
        // Transport pages are ciphertext.
        let heap_ct = package
            .pages
            .iter()
            .find(|(p, _)| *p == gplayout::HEAP_PAGE)
            .map(|(_, ct)| ct.clone())
            .unwrap();
        assert_ne!(&heap_ct[..16], b"secret-to-travel");

        let new_dom = migrate_in(&mut dst, &package).unwrap();
        dst.ensure_guest(new_dom).unwrap();
        let mut back = [0u8; 16];
        dst.plat.machine.guest_read_gpa(gpa, &mut back, true).unwrap();
        assert_eq!(&back, b"secret-to-travel");
    }

    #[test]
    fn tampered_package_is_rejected() {
        let mut src = protected_system(DRAM, 41).unwrap();
        let mut dst = protected_system(DRAM, 42).unwrap();
        let mut owner = GuestOwner::new(43);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let mut package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();
        package.pages[3].1[100] ^= 0xFF;
        assert!(matches!(migrate_in(&mut dst, &package), Err(XenError::Sev(_))));
    }

    #[test]
    fn package_for_wrong_target_is_rejected() {
        let mut src = protected_system(DRAM, 51).unwrap();
        let mut dst = protected_system(DRAM, 52).unwrap();
        let mut third = protected_system(DRAM, 53).unwrap();
        let mut owner = GuestOwner::new(54);
        let image = owner.package_image(b"kernel", &src.plat.firmware.pdh_public());
        let dom = boot_encrypted_guest(&mut src, &image, 192).unwrap();
        let package = migrate_out(&mut src, dom, &dst.plat.firmware.pdh_public()).unwrap();
        // The hypervisor redirects the package to a colluding machine —
        // which cannot unwrap the transport keys.
        assert!(matches!(migrate_in(&mut third, &package), Err(XenError::Sev(_))));
    }
}
