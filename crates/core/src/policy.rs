//! Policies on privileged instructions (paper Table 2) and the
//! write-once / execute-once / write-forbidding policies of §5.3.

use fidelius_hw::cpu::PrivOp;
use fidelius_hw::{Hpa, PAGE_SIZE};
use fidelius_telemetry::DenialReason;

/// Outcome of checking a privileged instruction against Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrVerdict {
    /// Execution is allowed.
    Allow,
    /// The instruction would violate its policy.
    Deny(DenialReason),
}

/// Facts the instruction policy needs about the protected system.
#[derive(Debug, Clone, Copy)]
pub struct InstrPolicyCtx {
    /// The registered (only valid) host page-table root.
    pub host_pt_root: Hpa,
}

/// Checks a privileged instruction per Table 2:
///
/// | instruction | policy |
/// |---|---|
/// | `MOV CR0`  | PG and WP bits cannot be cleared |
/// | `MOV CR4`  | SMEP bit cannot be cleared |
/// | `WRMSR`    | NXE bit in EFER cannot be cleared |
/// | `VMRUN`    | specific VMCB fields cannot be tampered (checked at the entry boundary) |
/// | `MOV CR3`  | the target CR3 must be valid |
pub fn check_instr(ctx: &InstrPolicyCtx, op: &PrivOp) -> InstrVerdict {
    match op {
        PrivOp::WriteCr0(v) => {
            if !v.pg {
                InstrVerdict::Deny(DenialReason::Cr0PgClear)
            } else if !v.wp {
                InstrVerdict::Deny(DenialReason::Cr0WpClear)
            } else {
                InstrVerdict::Allow
            }
        }
        PrivOp::WriteCr4(v) => {
            if !v.smep {
                InstrVerdict::Deny(DenialReason::Cr4SmepClear)
            } else {
                InstrVerdict::Allow
            }
        }
        PrivOp::WriteEfer(v) => {
            if !v.nxe {
                InstrVerdict::Deny(DenialReason::EferNxeClear)
            } else if !v.svme {
                InstrVerdict::Deny(DenialReason::EferSvmeClear)
            } else {
                InstrVerdict::Allow
            }
        }
        PrivOp::WriteCr3(root) => {
            if *root == ctx.host_pt_root {
                InstrVerdict::Allow
            } else {
                InstrVerdict::Deny(DenialReason::Cr3InvalidRoot)
            }
        }
        PrivOp::Vmrun(_) => {
            // VMRUN never executes through the generic path: the entry
            // boundary (enter_guest) owns it.
            InstrVerdict::Deny(DenialReason::VmrunOutsideBoundary)
        }
        PrivOp::Invlpg(_) | PrivOp::Cli | PrivOp::Sti => InstrVerdict::Allow,
        PrivOp::Lgdt(_) | PrivOp::Lidt(_) => InstrVerdict::Allow, // execute-once handled separately
    }
}

/// A bit-vector tracker for the write-once and execute-once policies:
/// "one bit per byte" over pre-defined regions (paper §5.3). The first
/// operation on a tracked address succeeds and latches the bit; later
/// operations are denied.
#[derive(Debug, Default)]
pub struct OncePolicy {
    regions: Vec<(Hpa, u64, Vec<u8>)>, // (base, len, bitmap)
}

impl OncePolicy {
    /// Empty tracker.
    pub fn new() -> Self {
        OncePolicy::default()
    }

    /// Registers a region (e.g. the start_info page, or the `lgdt` site).
    pub fn track(&mut self, base: Hpa, len: u64) {
        let bitmap = vec![0u8; (len as usize).div_ceil(8)];
        self.regions.push((base, len, bitmap));
    }

    /// Whether `pa` falls in a tracked region.
    pub fn tracks(&self, pa: Hpa) -> bool {
        self.regions.iter().any(|(b, l, _)| pa.0 >= b.0 && pa.0 < b.0 + l)
    }

    /// Attempts the one-shot operation on `pa`; `true` if this was the
    /// first (allowed) use, `false` if the bit was already latched.
    pub fn try_use(&mut self, pa: Hpa) -> bool {
        for (base, len, bitmap) in &mut self.regions {
            if pa.0 >= base.0 && pa.0 < base.0 + *len {
                let off = (pa.0 - base.0) as usize;
                let (byte, bit) = (off / 8, off % 8);
                if bitmap[byte] & (1 << bit) != 0 {
                    return false;
                }
                bitmap[byte] |= 1 << bit;
                return true;
            }
        }
        // Untracked addresses are not governed by this policy.
        true
    }

    /// Attempts a one-shot operation covering a whole page.
    pub fn try_use_page(&mut self, page: Hpa) -> bool {
        self.try_use(Hpa(page.0 & !(PAGE_SIZE - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelius_hw::regs::{Cr0, Cr4, Efer};

    fn ctx() -> InstrPolicyCtx {
        InstrPolicyCtx { host_pt_root: Hpa(0x40_0000) }
    }

    #[test]
    fn cr0_clearing_wp_or_pg_denied() {
        let c = ctx();
        assert_eq!(
            check_instr(&c, &PrivOp::WriteCr0(Cr0 { pg: true, wp: true })),
            InstrVerdict::Allow
        );
        assert!(matches!(
            check_instr(&c, &PrivOp::WriteCr0(Cr0 { pg: true, wp: false })),
            InstrVerdict::Deny(_)
        ));
        assert!(matches!(
            check_instr(&c, &PrivOp::WriteCr0(Cr0 { pg: false, wp: true })),
            InstrVerdict::Deny(_)
        ));
    }

    #[test]
    fn cr4_smep_must_stay() {
        let c = ctx();
        assert_eq!(check_instr(&c, &PrivOp::WriteCr4(Cr4 { smep: true })), InstrVerdict::Allow);
        assert!(matches!(
            check_instr(&c, &PrivOp::WriteCr4(Cr4 { smep: false })),
            InstrVerdict::Deny(_)
        ));
    }

    #[test]
    fn efer_nxe_and_svme_must_stay() {
        let c = ctx();
        assert_eq!(
            check_instr(&c, &PrivOp::WriteEfer(Efer { nxe: true, svme: true })),
            InstrVerdict::Allow
        );
        assert!(matches!(
            check_instr(&c, &PrivOp::WriteEfer(Efer { nxe: false, svme: true })),
            InstrVerdict::Deny(_)
        ));
        assert!(matches!(
            check_instr(&c, &PrivOp::WriteEfer(Efer { nxe: true, svme: false })),
            InstrVerdict::Deny(_)
        ));
    }

    #[test]
    fn cr3_must_target_registered_root() {
        let c = ctx();
        assert_eq!(check_instr(&c, &PrivOp::WriteCr3(Hpa(0x40_0000))), InstrVerdict::Allow);
        assert!(matches!(
            check_instr(&c, &PrivOp::WriteCr3(Hpa(0x6666_0000))),
            InstrVerdict::Deny(_)
        ));
    }

    #[test]
    fn vmrun_denied_on_generic_path() {
        assert!(matches!(check_instr(&ctx(), &PrivOp::Vmrun(Hpa(0x1000))), InstrVerdict::Deny(_)));
    }

    #[test]
    fn once_policy_latches() {
        let mut once = OncePolicy::new();
        once.track(Hpa(0x1000), 0x20);
        assert!(once.tracks(Hpa(0x1010)));
        assert!(!once.tracks(Hpa(0x2000)));
        assert!(once.try_use(Hpa(0x1010)), "first use allowed");
        assert!(!once.try_use(Hpa(0x1010)), "second use denied");
        assert!(once.try_use(Hpa(0x1011)), "neighbouring byte independent");
        // Untracked addresses pass through.
        assert!(once.try_use(Hpa(0x9000)));
        assert!(once.try_use(Hpa(0x9000)));
    }

    #[test]
    fn once_policy_page_granularity() {
        let mut once = OncePolicy::new();
        once.track(Hpa(0x3000), PAGE_SIZE);
        assert!(once.try_use_page(Hpa(0x3123)));
        assert!(!once.try_use_page(Hpa(0x3FFF)), "same page already used");
    }
}
