//! Full VM life-cycle protection (paper §4.3): booting a guest from an
//! owner-provided *encrypted* kernel image via the retrofitted SEV
//! SEND/RECEIVE APIs, so the plaintext kernel never exists in hypervisor-
//! readable memory.
//!
//! The flow of §4.3.3:
//!
//! 1. Fidelius invokes `RECEIVE_START` with `Kwrap`, `Nvm` and the
//!    origin's public ECDH key; the firmware unwraps `Ktek`/`Ktik` and
//!    generates the guest's `Kvek`.
//! 2. The hypervisor loads the encrypted kernel image into guest memory
//!    (it only ever sees transport ciphertext).
//! 3. Fidelius uses `RECEIVE_UPDATE` to re-encrypt the pages in place:
//!    the firmware decrypts with `Ktek` and re-encrypts with `Kvek`.
//! 4. `RECEIVE_FINISH` verifies the measurement `Mvm` with `Ktik`.
//! 5. `ACTIVATE` installs `Kvek` for the domain's ASID; Fidelius prepares
//!    the VMCB and the guest boots, building its encrypted page tables.
//! 6. The guest is sealed: its private frames disappear from the
//!    hypervisor's address space.

use crate::fidelius::Fidelius;
use fidelius_hw::PAGE_SIZE;
use fidelius_sev::{EncryptedImage, GuestPolicy, SevError};
use fidelius_telemetry::{DenialReason, Event};
use fidelius_trace::SpanKind;
use fidelius_xen::domain::DomainId;
use fidelius_xen::frontend::gplayout;
use fidelius_xen::layout::direct_map;
use fidelius_xen::{System, XenError};

/// Runs one lifecycle phase under a flight-recorder span of the given
/// kind, closing it on success and failure alike.
pub(crate) fn traced_phase<R>(
    sys: &mut System,
    kind: SpanKind,
    label: &'static str,
    body: impl FnOnce(&mut System) -> Result<R, XenError>,
) -> Result<R, XenError> {
    let span = sys.plat.machine.span_open(kind, label, &[]);
    let result = body(sys);
    sys.plat.machine.span_close(span);
    result
}

/// [`traced_phase`] pinned to [`SpanKind::LaunchStep`].
fn step<R>(
    sys: &mut System,
    label: &'static str,
    body: impl FnOnce(&mut System) -> Result<R, XenError>,
) -> Result<R, XenError> {
    traced_phase(sys, SpanKind::LaunchStep, label, body)
}

/// Downcasts the system's guardian to Fidelius.
///
/// # Errors
///
/// Fails when the system runs a different guardian.
pub fn fidelius_mut(sys: &mut System) -> Result<&mut Fidelius, XenError> {
    sys.guardian.as_any_mut().downcast_mut::<Fidelius>().ok_or(XenError::BadHypercall(0))
    // not a Fidelius system
}

/// Boots a guest from an owner-packaged encrypted image. Returns the new
/// domain id. The plaintext kernel is never visible to the hypervisor:
/// transport ciphertext goes in, `Kvek` ciphertext comes out, and the
/// measurement catches any tampering in between.
///
/// # Errors
///
/// SEV protocol failures (wrong platform, tampered image), allocation
/// failures.
pub fn boot_encrypted_guest(
    sys: &mut System,
    image: &EncryptedImage,
    mem_pages: u64,
) -> Result<DomainId, XenError> {
    // 1. RECEIVE_START — Fidelius self-maintains the returned handle as
    //    SEV metadata.
    let handle = step(sys, "launch:receive_start", |sys| {
        match sys.plat.firmware.receive_start(&image.session, GuestPolicy::default()) {
            Ok(h) => Ok(h),
            Err(SevError::SessionNonceReplayed) => {
                // Attestation rollback: the hypervisor replayed a stale
                // owner session (old firmware / old measurement). The
                // retrofitted firmware's nonce ledger catches it; surface
                // it as a typed denial so the attack matrix can assert on
                // it.
                sys.plat
                    .machine
                    .trace
                    .emit(Event::Denial { reason: DenialReason::LaunchMeasurementReplayed });
                Err(XenError::FailClosed(DenialReason::LaunchMeasurementReplayed))
            }
            Err(e) => Err(e.into()),
        }
    })?;

    // 2. Domain shell + memory (the hypervisor's job).
    let dom = step(sys, "launch:create_domain", |sys| {
        let dom = sys.xen.create_domain(&mut sys.plat, &mut *sys.guardian, mem_pages)?;
        sys.xen.populate_all(&mut sys.plat, &mut *sys.guardian, dom)?;
        Ok(dom)
    })?;

    // 3. The hypervisor loads the *encrypted* image into guest frames
    //    (boot window: frames are still mapped until sealing).
    let npages = image.pages.len() as u64;
    if gplayout::KERNEL_PAGE + npages > mem_pages {
        return Err(XenError::OutOfMemory);
    }
    step(sys, "launch:load_image", |sys| {
        for (i, page) in image.pages.iter().enumerate() {
            let frame = sys
                .xen
                .domain(dom)?
                .frame_of(gplayout::KERNEL_PAGE + i as u64)
                .ok_or(XenError::OutOfMemory)?;
            sys.plat.machine.host_write(direct_map(frame), page)?;
        }
        Ok(())
    })?;

    // 4. RECEIVE_UPDATE: in-place re-encryption Ktek → Kvek.
    step(sys, "launch:receive_update", |sys| {
        for i in 0..npages {
            let frame = sys
                .xen
                .domain(dom)?
                .frame_of(gplayout::KERNEL_PAGE + i)
                .ok_or(XenError::OutOfMemory)?;
            let mut chunk = vec![0u8; PAGE_SIZE as usize];
            sys.plat.machine.mc.dram().read_raw(frame, &mut chunk).map_err(XenError::Hw)?;
            sys.plat.firmware.receive_update_page(
                &mut sys.plat.machine,
                handle,
                &chunk,
                i,
                frame,
            )?;
        }
        Ok(())
    })?;

    // 5. RECEIVE_FINISH verifies Mvm; ACTIVATE installs Kvek.
    step(sys, "launch:finish_activate", |sys| {
        sys.plat.firmware.receive_finish(handle, &image.measurement)?;
        let asid = sys.xen.domain(dom)?.asid;
        sys.plat.firmware.activate(&mut sys.plat.machine, handle, asid)?;
        // Fidelius self-maintains the handle as SEV metadata; other
        // guardians (the vanilla-firmware victims of the attack matrix)
        // leave it with the hypervisor, as real SEV does.
        if let Ok(f) = fidelius_mut(sys) {
            f.register_sev_handle(dom, handle);
        }
        Ok(())
    })?;

    // 6. VMCB + guest early boot (encrypted stage-1 tables), then seal.
    step(sys, "launch:boot_and_seal", |sys| {
        let gcr3 = fidelius_hw::Gpa(gplayout::PT_POOL_PAGE * PAGE_SIZE);
        let rip = gplayout::KERNEL_PAGE * PAGE_SIZE;
        sys.xen.init_vmcb(&mut sys.plat, dom, gcr3, rip, true)?;
        sys.boot_guest(dom)?;
        let d = sys.xen.domain(dom)?;
        sys.guardian.seal_guest(&mut sys.plat, d)?;
        Ok(())
    })?;
    Ok(dom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fidelius_hw::Gpa;
    use fidelius_sev::GuestOwner;

    const DRAM: u64 = 32 * 1024 * 1024;

    fn protected_system() -> System {
        System::new(DRAM, 21, Box::new(Fidelius::new())).unwrap()
    }

    fn packaged_image(sys: &System, kernel: &[u8]) -> EncryptedImage {
        let mut owner = GuestOwner::new(99);
        owner.package_image(kernel, &sys.plat.firmware.pdh_public())
    }

    #[test]
    fn encrypted_boot_end_to_end() {
        let mut sys = protected_system();
        let kernel = b"FIDELIUS GUEST KERNEL \x7fELF".repeat(100);
        let image = packaged_image(&sys, &kernel);
        let dom = boot_encrypted_guest(&mut sys, &image, 256).unwrap();

        // The guest reads its own kernel plaintext...
        sys.ensure_guest(dom).unwrap();
        let mut head = [0u8; 22];
        sys.plat
            .machine
            .guest_read_gpa(Gpa(gplayout::KERNEL_PAGE * PAGE_SIZE), &mut head, true)
            .unwrap();
        assert_eq!(&head, b"FIDELIUS GUEST KERNEL ");
        sys.ensure_host().unwrap();

        // ...while DRAM holds neither the plaintext nor the transport form.
        let frame = sys.xen.domain(dom).unwrap().frame_of(gplayout::KERNEL_PAGE).unwrap();
        let mut raw = [0u8; 22];
        sys.plat.machine.mc.dram().read_raw(frame, &mut raw).unwrap();
        assert_ne!(&raw, b"FIDELIUS GUEST KERNEL ");
        assert_ne!(raw.to_vec(), image.pages[0][..22].to_vec());
    }

    #[test]
    fn tampered_image_fails_boot() {
        let mut sys = protected_system();
        let mut image = packaged_image(&sys, b"kernel bytes");
        image.pages[0][0] ^= 0x01; // hypervisor flips one bit during load
        let err = boot_encrypted_guest(&mut sys, &image, 256).unwrap_err();
        assert!(matches!(err, XenError::Sev(_)), "got {err:?}");
    }

    #[test]
    fn image_for_other_platform_fails_boot() {
        let mut sys = protected_system();
        let other = protected_system(); // different platform identity? same seed → same keys
        let mut sys2 = System::new(DRAM, 22, Box::new(Fidelius::new())).unwrap();
        let image = packaged_image(&sys2, b"kernel");
        let err = boot_encrypted_guest(&mut sys, &image, 256).unwrap_err();
        assert!(matches!(err, XenError::Sev(_)));
        drop(other);
        let dom = boot_encrypted_guest(&mut sys2, &image, 256).unwrap();
        assert_eq!(dom.0, 1);
    }

    #[test]
    fn sealed_guest_frames_are_unreachable_for_hypervisor() {
        let mut sys = protected_system();
        let image = packaged_image(&sys, b"kernel");
        let dom = boot_encrypted_guest(&mut sys, &image, 256).unwrap();
        sys.ensure_host().unwrap();
        let frame = sys.xen.domain(dom).unwrap().frame_of(gplayout::KERNEL_PAGE).unwrap();
        // Reading through the hypervisor's direct map faults: the page is
        // unmapped, not merely unreadable.
        let mut buf = [0u8; 8];
        assert!(sys.plat.machine.host_read(direct_map(frame), &mut buf).is_err());
    }

    #[test]
    fn shutdown_tears_down_sev_state() {
        let mut sys = protected_system();
        let image = packaged_image(&sys, b"kernel");
        let dom = boot_encrypted_guest(&mut sys, &image, 256).unwrap();
        let asid = sys.xen.domain(dom).unwrap().asid;
        assert!(sys.plat.machine.mc.has_guest_key(asid));
        sys.shutdown_guest(dom).unwrap();
        assert!(!sys.plat.machine.mc.has_guest_key(asid), "DEACTIVATE must uninstall the key");
    }
}
