//! The Fidelius protection context: the [`Guardian`] implementation that
//! enforces the paper's design.
//!
//! | resource | mechanism | gate |
//! |---|---|---|
//! | VMCB + guest registers | shadowing with exit-reason masking (§4.2.1) | entry/exit boundary |
//! | host page tables | write-protected, PIT policy (§4.1.1) | type 1 |
//! | guest NPTs | write-protected, PIT + assignment policy (§4.2.2) | type 1 |
//! | grant table | write-protected, GIT policy (§4.3.7) | type 1 |
//! | SEV metadata (handles, ASIDs, session keys) | self-maintained in private memory (§4.2.3) | type 3 |
//! | privileged instructions | monopolized + policy (Table 2) / unmapped | type 2 / 3 |
//! | guest frames | unmapped from the hypervisor after boot (§4.3.4) | — |

use crate::audit::AuditLog;
use crate::gates::{privop_label, GateMapping, Gates};
use crate::git::{Git, GitEntry};
use crate::pit::{Pit, PitEntry, Usage};
use crate::policy::{check_instr, InstrPolicyCtx, InstrVerdict, OncePolicy};
use crate::scanner;
use crate::shadow::{ShadowCtx, Verdict};
use fidelius_crypto::sha256::Sha256;
use fidelius_hw::cpu::PrivOp;
use fidelius_hw::cycles::CycleCategory;
use fidelius_hw::memctrl::EncSel;
use fidelius_hw::paging::{Mapper, PhysPtAccess, PtAccess, Pte, PTE_NX, PTE_PRESENT, PTE_WRITABLE};
use fidelius_hw::regs::Cr4;
use fidelius_hw::vmcb::{ExitCode, VmcbField, VmcbImage};
use fidelius_hw::{Hpa, PAGE_SIZE};
use fidelius_sev::firmware::IoHelpers;
use fidelius_sev::Handle;
use fidelius_telemetry::{
    DenialReason, Event, FaultKind, FlushScope, InjectionOutcome, PolicyObject, VerifyOutcome,
};
use fidelius_xen::domain::{Domain, DomainId};
use fidelius_xen::grants::{read_entry_phys, GrantEntry, GRANT_ENTRY_SIZE, GRANT_TABLE_ENTRIES};
use fidelius_xen::guardian::{GuardError, Guardian, IoDir, LateLaunchInfo};
use fidelius_xen::hypercall::HC_PRE_SHARING_OP;
use fidelius_xen::layout::direct_map;
use fidelius_xen::platform::{Platform, FIDELIUS_DATA_PA, GUEST_POOL_PA};
use std::any::Any;
use std::collections::HashMap;

/// Number of VMCB save-area fields masked per exit on real hardware; used
/// for cycle accounting (our compact VMCB model has fewer named fields).
const MASKED_FIELDS_NOMINAL: u64 = 28;
/// VMCB size in cache lines for shadow-cost accounting.
const VMCB_LINES: u64 = 64;

#[derive(Debug, Clone, Copy)]
struct NptPageInfo {
    dom: DomainId,
    level: u8,
    gpa_prefix: u64,
}

#[derive(Debug, Clone, Copy)]
struct DomMeta {
    asid: u16,
    vmcb_pa: Hpa,
    npt_root: Hpa,
    sealed: bool,
}

#[derive(Debug, Clone, Copy)]
struct SevMeta {
    handle: Handle,
    io: Option<IoHelpers>,
}

/// Counters exposed for the evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FideliusStats {
    /// VMCB/register integrity violations detected and blocked.
    pub integrity_violations: u64,
    /// Policy rejections (PIT, GIT, instruction policies).
    pub policy_rejections: u64,
    /// Shadow/verify round trips performed.
    pub shadow_round_trips: u64,
    /// Privileged instructions erased from the hypervisor image at late
    /// launch.
    pub instructions_erased: u64,
}

/// The Fidelius guardian.
pub struct Fidelius {
    pit: Pit,
    git: Git,
    gates: Option<Gates>,
    once: OncePolicy,
    shadows: HashMap<DomainId, ShadowCtx>,
    assignments: HashMap<DomainId, HashMap<u64, Hpa>>,
    npt_pages: HashMap<u64, NptPageInfo>, // keyed by pfn
    doms: HashMap<DomainId, DomMeta>,
    sev_meta: HashMap<DomainId, SevMeta>,
    host_pt_root: Hpa,
    grant_table_pa: Hpa,
    xen_code_measurement: [u8; 32],
    instr_ctx: InstrPolicyCtx,
    stats: FideliusStats,
    audit: AuditLog,
}

impl std::fmt::Debug for Fidelius {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fidelius")
            .field("domains", &self.doms.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Fidelius {
    fn default() -> Self {
        Self::new()
    }
}

impl Fidelius {
    /// A Fidelius instance awaiting late launch.
    pub fn new() -> Self {
        Fidelius {
            pit: Pit::new(),
            git: Git::new(),
            gates: None,
            once: OncePolicy::new(),
            shadows: HashMap::new(),
            assignments: HashMap::new(),
            npt_pages: HashMap::new(),
            doms: HashMap::new(),
            sev_meta: HashMap::new(),
            host_pt_root: Hpa(0),
            grant_table_pa: Hpa(0),
            xen_code_measurement: [0; 32],
            instr_ctx: InstrPolicyCtx { host_pt_root: Hpa(0) },
            stats: FideliusStats::default(),
            audit: AuditLog::default(),
        }
    }

    /// Statistics for the evaluation.
    pub fn stats(&self) -> FideliusStats {
        self.stats
    }

    /// The late-launch measurement of the hypervisor's code (for remote
    /// attestation).
    pub fn xen_measurement(&self) -> [u8; 32] {
        self.xen_code_measurement
    }

    /// Gate invocation counters (type 1, 2, 3).
    pub fn gate_counts(&self) -> (u64, u64, u64) {
        self.gates.as_ref().map(|g| g.counts()).unwrap_or((0, 0, 0))
    }

    /// Read-only PIT view (tests and analysis).
    pub fn pit(&self) -> &Pit {
        &self.pit
    }

    /// Registers the SEV firmware handle Fidelius holds for a domain
    /// (set by the encrypted-boot lifecycle).
    pub fn register_sev_handle(&mut self, dom: DomainId, handle: Handle) {
        self.sev_meta.insert(dom, SevMeta { handle, io: None });
    }

    /// The SEV handle for a domain, if Fidelius manages one.
    pub fn sev_handle(&self, dom: DomainId) -> Option<Handle> {
        self.sev_meta.get(&dom).map(|m| m.handle)
    }

    /// The write-once policy (§5.3) applied to a guest's start_info /
    /// shared_info page: the hypervisor may initialize the page exactly
    /// once (mediated, through the gate); later writes are denied.
    ///
    /// # Errors
    ///
    /// Denied on the second attempt or for un-populated pages.
    pub fn write_once_page(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        gpa_page: u64,
        data: &[u8],
    ) -> Result<(), GuardError> {
        let frame = self
            .assignments
            .get(&dom)
            .and_then(|m| m.get(&gpa_page))
            .copied()
            .ok_or(GuardError::Policy("write-once target not populated"))?;
        if !self.once.tracks(frame) {
            self.once.track(frame, PAGE_SIZE);
        }
        if !self.once.try_use_page(frame) {
            return Err(self.deny(plat, DenialReason::WriteOnceAlreadyInitialized));
        }
        let e = self.pit.peek(frame);
        self.pit.set(frame, PitEntry::new(Usage::WriteOnce, e.owner(), e.asid(), e.shared()));
        let mut gates = self.gates.take().expect("late_launch must run first");
        let data = data.to_vec();
        let result = gates.type1(plat, move |plat| {
            plat.machine.mc.dram_mut().write_raw(frame, &data).map_err(GuardError::Hw)
        });
        self.gates = Some(gates);
        result
    }

    /// Produces a remote-attestation report: the late-launch measurement
    /// of the hypervisor's code plus a caller nonce, tagged by the
    /// platform firmware (§4.3.1: "issue a measurement on its integrity,
    /// which can be used in remote attestation to verify its validity").
    pub fn attestation_report(&self, plat: &Platform, nonce: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
        let mut evidence = Vec::with_capacity(64);
        evidence.extend_from_slice(&self.xen_code_measurement);
        evidence.extend_from_slice(nonce);
        (self.xen_code_measurement, plat.firmware.attest(&evidence))
    }

    /// Benchmark hook: runs each gate type `iters` times on the live
    /// platform and returns the average simulated cycles per round trip
    /// (type 1, type 2 — net of the monopolized instruction itself —,
    /// type 3 — net of the CR3 reload it performs). Reproduces the
    /// paper's micro-benchmark 1 methodology.
    ///
    /// # Errors
    ///
    /// Gate execution failures (should not happen after late launch).
    pub fn measure_gates(
        &mut self,
        plat: &mut Platform,
        iters: u32,
    ) -> Result<(f64, f64, f64), GuardError> {
        let mut gates = self.gates.take().expect("late_launch must run first");
        let host_root = self.host_pt_root;
        let measure = |plat: &mut Platform,
                       f: &mut dyn FnMut(&mut Platform) -> Result<(), GuardError>|
         -> Result<f64, GuardError> {
            let start = plat.machine.cycles.total_f64();
            for _ in 0..iters {
                f(plat)?;
            }
            Ok((plat.machine.cycles.total_f64() - start) / f64::from(iters))
        };
        let t1 = measure(plat, &mut |plat| gates.type1(plat, |_| Ok(())))?;
        let cli_cost = plat.machine.cost.cli;
        let t2raw = measure(plat, &mut |plat| gates.type2(plat, PrivOp::Cli))?;
        let sti_site = gates.sites.sti;
        plat.machine.exec_priv(sti_site, PrivOp::Sti).map_err(GuardError::Hw)?;
        let cr3_cost = plat.machine.cost.write_cr3 + plat.machine.cost.tlb_flush_full;
        let t3raw = measure(plat, &mut |plat| gates.type3(plat, PrivOp::WriteCr3(host_root)))?;
        self.gates = Some(gates);
        Ok((t1, t2raw - cli_cost, t3raw - cr3_cost))
    }

    fn gates_mut(&mut self) -> &mut Gates {
        self.gates.as_mut().expect("late_launch must run first")
    }

    /// Records a typed denial: bump the counter, emit the trace event, feed
    /// the audit log from that same event, and build the legacy error.
    fn deny(&mut self, plat: &mut Platform, reason: DenialReason) -> GuardError {
        self.stats.policy_rejections += 1;
        let ev = Event::Denial { reason };
        plat.machine.trace.emit(ev.clone());
        self.audit.ingest(&ev);
        GuardError::Policy(reason.as_str())
    }

    /// A denial at a policy decision point: emits the (refused) decision
    /// event with its operands before the denial itself.
    #[allow(clippy::too_many_arguments)]
    fn refuse(
        &mut self,
        plat: &mut Platform,
        object: PolicyObject,
        op: &'static str,
        operand: u64,
        dom: u16,
        reason: DenialReason,
    ) -> GuardError {
        plat.machine.trace.emit(Event::Decision { object, op, operand, dom, allowed: false });
        self.deny(plat, reason)
    }

    /// The audit log of refused operations (§5.3).
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    // ----- direct-map manipulation (inside gates) -------------------------

    fn dm_leaf_entry(&self, plat: &mut Platform, pa: Hpa) -> Result<Hpa, GuardError> {
        let mapper = Mapper::from_root(self.host_pt_root);
        let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
        mapper
            .leaf_entry_pa(&mut acc, direct_map(pa).0)
            .map_err(GuardError::Hw)?
            .ok_or(GuardError::Policy("no direct-map entry"))
    }

    fn set_dm_entry(
        &self,
        plat: &mut Platform,
        pa: Hpa,
        f: impl FnOnce(Pte) -> Pte,
    ) -> Result<(), GuardError> {
        let entry_pa = self.dm_leaf_entry(plat, pa)?;
        let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
        let old = Pte(acc.read_entry(entry_pa).map_err(GuardError::Hw)?);
        acc.write_entry(entry_pa, f(old).0).map_err(GuardError::Hw)?;
        // The TLB caches the full translation; an edited direct-map leaf
        // (unmap, write-protect, remap) must take effect on the very next
        // host access or the hypervisor keeps reaching a frame Fidelius
        // just revoked. Demote rather than flush so hit accounting matches
        // the walk-every-access model, which applied edits without any
        // architectural flush.
        plat.machine.tlb.demote_page(fidelius_hw::tlb::Space::Host, direct_map(pa).pfn());
        Ok(())
    }

    fn unmap_dm(&self, plat: &mut Platform, pa: Hpa) -> Result<(), GuardError> {
        self.set_dm_entry(plat, pa, |p| p.without_flags(PTE_PRESENT))
    }

    fn remap_dm(&self, plat: &mut Platform, pa: Hpa, writable: bool) -> Result<(), GuardError> {
        self.set_dm_entry(plat, pa, move |_| {
            let w = if writable { PTE_WRITABLE } else { 0 };
            Pte::new(pa, PTE_PRESENT | PTE_NX | w)
        })
    }

    fn write_protect_dm(&self, plat: &mut Platform, pa: Hpa) -> Result<(), GuardError> {
        self.set_dm_entry(plat, pa, |p| p.without_flags(PTE_WRITABLE))
    }

    // ----- policy helpers ---------------------------------------------------

    /// Decides whether the hypervisor may install a mapping to `target`
    /// with `writable` permission in *its own* page tables.
    fn host_mapping_allowed(&mut self, plat: &mut Platform, target: Hpa, writable: bool) -> bool {
        let e = self.pit.query(target, &mut plat.machine.cycles);
        match e.usage() {
            Usage::Free | Usage::XenData | Usage::Vmcb => true,
            Usage::XenCode
            | Usage::XenPageTable
            | Usage::GrantTable
            | Usage::NptPage
            | Usage::WriteOnce => !writable,
            Usage::GuestPage => e.shared(),
            Usage::FideliusCode => !writable,
            Usage::FideliusData => false,
        }
    }

    fn frame_assigned_elsewhere(&self, dom: DomainId, gpa_page: u64, frame: Hpa) -> bool {
        self.assignments
            .get(&dom)
            .map(|m| m.iter().any(|(g, f)| *f == frame && *g != gpa_page))
            .unwrap_or(false)
    }

    fn grant_authorizes_foreign_map(
        &self,
        plat: &Platform,
        grantee: DomainId,
        frame: Hpa,
        writable: bool,
    ) -> bool {
        for i in 0..GRANT_TABLE_ENTRIES {
            if let Ok(e) = read_entry_phys(&plat.machine.mc, self.grant_table_pa, i) {
                if e.valid
                    && e.frame == frame
                    && DomainId(e.grantee) == grantee
                    && (!writable || e.writable)
                {
                    return true;
                }
            }
        }
        false
    }
}

impl Guardian for Fidelius {
    fn name(&self) -> &'static str {
        "fidelius"
    }

    fn late_launch(
        &mut self,
        plat: &mut Platform,
        info: &LateLaunchInfo,
    ) -> Result<(), GuardError> {
        self.host_pt_root = info.host_pt_root;
        self.grant_table_pa = info.grant_table_pa;
        self.instr_ctx = InstrPolicyCtx { host_pt_root: info.host_pt_root };

        // 1. Measure the hypervisor's code, then monopolize the privileged
        //    instructions: erase every occurrence from the hypervisor
        //    image so the only copies live in Fidelius's code.
        let (xen_pa, xen_pages) = info.xen_code;
        let mut code = vec![0u8; (xen_pages * PAGE_SIZE) as usize];
        plat.machine.mc.dram().read_raw(xen_pa, &mut code).map_err(GuardError::Hw)?;
        self.xen_code_measurement = Sha256::digest(&code);
        self.stats.instructions_erased = scanner::erase(&mut code) as u64;
        plat.machine.mc.dram_mut().write_raw(xen_pa, &code).map_err(GuardError::Hw)?;

        // 2. Build the PIT.
        let dram_pages = plat.machine.mc.dram().frames();
        self.pit.set_range(
            Hpa(0),
            GUEST_POOL_PA.pfn().min(dram_pages),
            PitEntry::new(Usage::XenData, 0, 0, false),
        );
        self.pit.set_range(xen_pa, xen_pages, PitEntry::new(Usage::XenCode, 0, 0, false));
        let (fid_pa, fid_pages) = info.fidelius_code;
        self.pit.set_range(fid_pa, fid_pages, PitEntry::new(Usage::FideliusCode, 0, 0, false));
        self.pit.set_range(
            FIDELIUS_DATA_PA,
            fidelius_xen::layout::FIDELIUS_DATA_PAGES,
            PitEntry::new(Usage::FideliusData, 0, 0, false),
        );
        self.pit.set_range(
            Hpa(GUEST_POOL_PA.0),
            dram_pages.saturating_sub(GUEST_POOL_PA.pfn()),
            PitEntry::default(), // guest pool: Free
        );
        let pt_pages = {
            let mapper = Mapper::from_root(info.host_pt_root);
            let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
            mapper.collect_table_pages(&mut acc).map_err(GuardError::Hw)?
        };
        for &p in &pt_pages {
            self.pit.set(p, PitEntry::new(Usage::XenPageTable, 0, 0, false));
        }
        self.pit.set(info.grant_table_pa, PitEntry::new(Usage::GrantTable, 0, 0, false));

        // 3. Non-bypassable memory isolation: write-protect the critical
        //    pages in the hypervisor's only mappings of them.
        for &p in &pt_pages {
            self.write_protect_dm(plat, p)?;
        }
        self.write_protect_dm(plat, info.grant_table_pa)?;
        for i in 0..xen_pages {
            self.write_protect_dm(plat, xen_pa.add(i * PAGE_SIZE))?;
        }
        for i in 0..fid_pages {
            self.write_protect_dm(plat, fid_pa.add(i * PAGE_SIZE))?;
        }
        // Fidelius private data: unmapped entirely.
        for i in 0..fidelius_xen::layout::FIDELIUS_DATA_PAGES {
            let pa = FIDELIUS_DATA_PA.add(i * PAGE_SIZE);
            self.unmap_dm(plat, pa)?;
            // Also the FIDELIUS_DATA_BASE alias.
            let va = fidelius_xen::layout::FIDELIUS_DATA_BASE.add(i * PAGE_SIZE);
            let mapper = Mapper::from_root(self.host_pt_root);
            let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
            if let Some(entry) = mapper.leaf_entry_pa(&mut acc, va.0).map_err(GuardError::Hw)? {
                let old = Pte(acc.read_entry(entry).map_err(GuardError::Hw)?);
                acc.write_entry(entry, old.without_flags(PTE_PRESENT).0).map_err(GuardError::Hw)?;
            }
        }

        // 4. Unmap the vmrun / mov-cr3 pages of Fidelius's code and wire
        //    the type-3 gate mapping slots.
        let sites = info.fidelius_sites;
        let slot_for =
            |plat: &mut Platform, site_va: fidelius_hw::Hva| -> Result<GateMapping, GuardError> {
                let page_va = site_va.page_base();
                let mapper = Mapper::from_root(info.host_pt_root);
                let mut acc = PhysPtAccess::new(&mut plat.machine.mc, EncSel::None);
                let leaf_entry_pa = mapper
                    .leaf_entry_pa(&mut acc, page_va.0)
                    .map_err(GuardError::Hw)?
                    .ok_or(GuardError::Policy("instruction page unmapped at launch"))?;
                let mapped_pte = acc.read_entry(leaf_entry_pa).map_err(GuardError::Hw)?;
                acc.write_entry(leaf_entry_pa, 0).map_err(GuardError::Hw)?;
                Ok(GateMapping { leaf_entry_pa, mapped_pte, page_va })
            };
        let vmrun_page = slot_for(plat, sites.vmrun)?;
        let cr3_page = slot_for(plat, sites.write_cr3)?;
        self.gates = Some(Gates::new(sites, vmrun_page, cr3_page));

        // 5. Execute-once policy for lgdt/lidt sites; write-once regions
        //    could be registered here as guests appear.
        self.once
            .track(Hpa(fid_pa.0 + (sites.lgdt.0 - fidelius_xen::layout::FIDELIUS_CODE_BASE.0)), 8);
        self.once
            .track(Hpa(fid_pa.0 + (sites.lidt.0 - fidelius_xen::layout::FIDELIUS_CODE_BASE.0)), 8);

        // 6. Fresh translations + SMEP on.
        plat.machine.tlb.flush_all();
        plat.machine.cycles.charge_as(CycleCategory::Paging, plat.machine.cost.tlb_flush_full);
        plat.machine.trace.emit(Event::TlbFlush { scope: FlushScope::Full });
        plat.machine
            .exec_priv(sites.write_cr4, PrivOp::WriteCr4(Cr4 { smep: true }))
            .map_err(GuardError::Hw)?;
        Ok(())
    }

    fn host_pt_write(
        &mut self,
        plat: &mut Platform,
        entry_pa: Hpa,
        value: u64,
    ) -> Result<(), GuardError> {
        let page = entry_pa.page_base();
        if self.pit.query(page, &mut plat.machine.cycles).usage() != Usage::XenPageTable {
            return Err(self.refuse(
                plat,
                PolicyObject::Pit,
                "host-pt-write",
                entry_pa.0,
                0,
                DenialReason::NotAPageTablePage,
            ));
        }
        let pte = Pte(value);
        if pte.present() && !self.host_mapping_allowed(plat, pte.addr().page_base(), pte.writable())
        {
            return Err(self.refuse(
                plat,
                PolicyObject::Pit,
                "host-pt-write",
                value,
                0,
                DenialReason::PitPolicyViolation,
            ));
        }
        plat.machine.trace.emit(Event::Decision {
            object: PolicyObject::Pit,
            op: "host-pt-write",
            operand: value,
            dom: 0,
            allowed: true,
        });
        let mut gates = self.gates.take().expect("late_launch must run first");
        let result = gates.type1(plat, |plat| {
            plat.machine.host_write_u64(direct_map(entry_pa), value).map_err(GuardError::Fault)
        });
        self.gates = Some(gates);
        // The entry's mapped VA is unknown here (the hypervisor hands us a
        // raw entry address), so conservatively demote every cached host
        // translation; residency and hit accounting are untouched.
        if result.is_ok() {
            plat.machine.tlb.demote_space(fidelius_hw::tlb::Space::Host);
        }
        result
    }

    fn npt_write(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        entry_pa: Hpa,
        value: u64,
    ) -> Result<(), GuardError> {
        let page = entry_pa.page_base();
        let info = match self.npt_pages.get(&page.pfn()) {
            Some(i) => *i,
            None => {
                return Err(self.refuse(
                    plat,
                    PolicyObject::Pit,
                    "npt-write",
                    entry_pa.0,
                    dom.0,
                    DenialReason::WriteOutsideRegisteredNpt,
                ))
            }
        };
        if info.dom != dom {
            return Err(self.refuse(
                plat,
                PolicyObject::Pit,
                "npt-write",
                entry_pa.0,
                dom.0,
                DenialReason::NptPageForeignDomain,
            ));
        }
        let idx = entry_pa.page_offset() / 8;
        let pte = Pte(value);
        let mut claim: Option<(Hpa, u64)> = None;
        let mut register_child: Option<(Hpa, NptPageInfo)> = None;
        if pte.present() {
            if info.level > 0 {
                // Intermediate entry: must point at a fresh hypervisor
                // heap page, which becomes an NPT page of this domain.
                let target = pte.addr().page_base();
                let already = self.npt_pages.get(&target.pfn());
                match already {
                    Some(existing) if existing.dom == dom => {} // re-link
                    Some(_) => {
                        return Err(self.refuse(
                            plat,
                            PolicyObject::Pit,
                            "npt-write",
                            value,
                            dom.0,
                            DenialReason::TablePageForeignDomain,
                        ))
                    }
                    None => {
                        let usage = self.pit.query(target, &mut plat.machine.cycles).usage();
                        if usage != Usage::XenData {
                            return Err(self.refuse(
                                plat,
                                PolicyObject::Pit,
                                "npt-write",
                                value,
                                dom.0,
                                DenialReason::IntermediateNotHeapPage,
                            ));
                        }
                        let child_prefix =
                            info.gpa_prefix + (idx << (12 + 9 * u64::from(info.level)));
                        register_child = Some((
                            target,
                            NptPageInfo { dom, level: info.level - 1, gpa_prefix: child_prefix },
                        ));
                    }
                }
            } else {
                // Leaf: map a frame for gpa_page.
                let gpa_page = (info.gpa_prefix >> 12) + idx;
                let frame = pte.addr().page_base();
                let entry = self.pit.query(frame, &mut plat.machine.cycles);
                let assigned = self.assignments.get(&dom).and_then(|m| m.get(&gpa_page)).copied();
                match assigned {
                    Some(f) if f == frame => {} // permission / C-bit update
                    Some(_) => {
                        return Err(self.refuse(
                            plat,
                            PolicyObject::Pit,
                            "npt-write",
                            frame.0,
                            dom.0,
                            DenialReason::RemapPopulatedGpa,
                        ))
                    }
                    None => match entry.usage() {
                        Usage::Free => {
                            if self.frame_assigned_elsewhere(dom, gpa_page, frame) {
                                return Err(self.refuse(
                                    plat,
                                    PolicyObject::Pit,
                                    "npt-write",
                                    frame.0,
                                    dom.0,
                                    DenialReason::FrameAlreadyBacksGpa,
                                ));
                            }
                            claim = Some((frame, gpa_page));
                        }
                        Usage::GuestPage if DomainId(entry.owner()) == dom => {
                            if self.frame_assigned_elsewhere(dom, gpa_page, frame) {
                                return Err(self.refuse(
                                    plat,
                                    PolicyObject::Pit,
                                    "npt-write",
                                    frame.0,
                                    dom.0,
                                    DenialReason::InDomainPageShuffle,
                                ));
                            }
                            claim = Some((frame, gpa_page));
                        }
                        Usage::GuestPage if entry.shared() => {
                            if !self.grant_authorizes_foreign_map(plat, dom, frame, pte.writable())
                            {
                                return Err(self.refuse(
                                    plat,
                                    PolicyObject::Pit,
                                    "npt-write",
                                    frame.0,
                                    dom.0,
                                    DenialReason::ForeignMappingWithoutGrant,
                                ));
                            }
                        }
                        Usage::GuestPage => {
                            return Err(self.refuse(
                                plat,
                                PolicyObject::Pit,
                                "npt-write",
                                frame.0,
                                dom.0,
                                DenialReason::MapOtherGuestPrivatePage,
                            ))
                        }
                        _ => {
                            return Err(self.refuse(
                                plat,
                                PolicyObject::Pit,
                                "npt-write",
                                frame.0,
                                dom.0,
                                DenialReason::FrameNotMappable,
                            ))
                        }
                    },
                }
            }
        }
        plat.machine.trace.emit(Event::Decision {
            object: PolicyObject::Pit,
            op: "npt-write",
            operand: value,
            dom: dom.0,
            allowed: true,
        });
        let sealed = self.doms.get(&dom).map(|m| m.sealed).unwrap_or(false);
        let mut gates = self.gates.take().expect("late_launch must run first");
        let result = gates.type1(plat, |plat| {
            plat.machine.host_write_u64(direct_map(entry_pa), value).map_err(GuardError::Fault)
        });
        self.gates = Some(gates);
        result?;
        if let Some((target, child_info)) = register_child {
            self.npt_pages.insert(target.pfn(), child_info);
            self.pit.set(target, PitEntry::new(Usage::NptPage, dom.0, 0, false));
            self.write_protect_dm(plat, target)?;
        }
        if let Some((frame, gpa_page)) = claim {
            let asid = self.doms.get(&dom).map(|m| m.asid).unwrap_or(0);
            self.pit.set(frame, PitEntry::new(Usage::GuestPage, dom.0, asid, false));
            self.assignments.entry(dom).or_default().insert(gpa_page, frame);
            if sealed {
                self.unmap_dm(plat, frame)?;
            }
        }
        Ok(())
    }

    fn grant_write(
        &mut self,
        plat: &mut Platform,
        index: u64,
        entry: GrantEntry,
    ) -> Result<(), GuardError> {
        if index >= GRANT_TABLE_ENTRIES {
            return Err(self.refuse(
                plat,
                PolicyObject::Git,
                "grant-write",
                index,
                entry.owner,
                DenialReason::GrantIndexOutOfRange,
            ));
        }
        let old = read_entry_phys(&plat.machine.mc, self.grant_table_pa, index)
            .map_err(GuardError::Hw)?;
        if entry.valid {
            let owner = DomainId(entry.owner);
            let grantee = DomainId(entry.grantee);
            if !self.git.authorizes(owner, grantee, entry.gpa_page, entry.writable) {
                return Err(self.refuse(
                    plat,
                    PolicyObject::Git,
                    "grant-write",
                    entry.gpa_page,
                    entry.owner,
                    DenialReason::GrantNotAuthorized,
                ));
            }
            let assigned =
                self.assignments.get(&owner).and_then(|m| m.get(&entry.gpa_page)).copied();
            if assigned != Some(entry.frame) {
                return Err(self.refuse(
                    plat,
                    PolicyObject::Git,
                    "grant-write",
                    entry.frame.0,
                    entry.owner,
                    DenialReason::GrantFrameMismatch,
                ));
            }
        }
        plat.machine.trace.emit(Event::Decision {
            object: PolicyObject::Git,
            op: "grant-write",
            operand: index,
            dom: entry.owner,
            allowed: true,
        });
        let base = self.grant_table_pa.add(index * GRANT_ENTRY_SIZE);
        let words = entry.to_words();
        let mut gates = self.gates.take().expect("late_launch must run first");
        let result = gates.type1(plat, |plat| {
            for (i, w) in words.iter().enumerate() {
                plat.machine
                    .host_write_u64(direct_map(base.add(8 * i as u64)), *w)
                    .map_err(GuardError::Fault)?;
            }
            Ok(())
        });
        self.gates = Some(gates);
        result?;
        // Shared-state bookkeeping: grants open the frame to the host
        // (the back-end must reach the plaintext-shared page), revocation
        // closes it again.
        if entry.valid {
            let e = self.pit.peek(entry.frame);
            self.pit.set(entry.frame, e.with_shared(true));
            self.remap_dm(plat, entry.frame, entry.writable)?;
        } else if old.valid {
            let e = self.pit.peek(old.frame);
            self.pit.set(old.frame, e.with_shared(false));
            let owner_sealed =
                self.doms.get(&DomainId(old.owner)).map(|m| m.sealed).unwrap_or(false);
            if owner_sealed {
                self.unmap_dm(plat, old.frame)?;
            }
        }
        Ok(())
    }

    fn pre_sharing(
        &mut self,
        plat: &mut Platform,
        initiator: DomainId,
        target: DomainId,
        gpa_page: u64,
        nframes: u64,
        writable: bool,
    ) -> Result<(), GuardError> {
        // The authentic registration already happened at the exit
        // boundary (on_vmexit intercepts the hypercall). This path is the
        // hypervisor's relay; accept it only if it matches.
        if self.git.authorizes(initiator, target, gpa_page, writable)
            || self.git.authorizes(initiator, target, gpa_page, false)
        {
            let _ = nframes;
            Ok(())
        } else {
            Err(self.refuse(
                plat,
                PolicyObject::Git,
                "pre-sharing",
                gpa_page,
                initiator.0,
                DenialReason::PreSharingRelayMismatch,
            ))
        }
    }

    fn enter_guest(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError> {
        let meta = match self.doms.get(&dom.id) {
            Some(m) => *m,
            None => return Err(self.deny(plat, DenialReason::UnknownDomainAtEntry)),
        };
        // A typed integrity failure at the boundary: bump the counter, trace
        // the failed verification, feed the audit log from that same event.
        let tampered = |this: &mut Self, plat: &mut Platform, reason: DenialReason| {
            this.stats.integrity_violations += 1;
            let ev = Event::ShadowVerify {
                vmcb_pa: dom.vmcb_pa.0,
                outcome: VerifyOutcome::Tampered(reason),
            };
            plat.machine.trace.emit(ev.clone());
            this.audit.ingest(&ev);
            // Under fault injection, pair the injected VMCB tamper with its
            // disposal so the matrix can audit the full chain.
            if plat.machine.inject.is_armed() {
                plat.machine.trace.emit(Event::FaultOutcome {
                    kind: FaultKind::VmcbTamper,
                    outcome: InjectionOutcome::FailClosed(reason),
                });
            }
            GuardError::IntegrityViolation(reason.as_str())
        };
        let img = VmcbImage::load(&plat.machine.mc, dom.vmcb_pa).map_err(GuardError::Hw)?;
        if let Some(shadow) = self.shadows.remove(&dom.id) {
            // Entry-side shadow cost: compare + restore + checks.
            let m = &mut plat.machine;
            m.cycles.charge_as(
                CycleCategory::ShadowVerify,
                VMCB_LINES as f64 * m.cost.compare_cache_line
                    + 16.0 * m.cost.reg_copy
                    + m.cost.sanity_check
                    + m.cost.gate_dispatch,
            );
            match shadow.verify_and_merge(&img) {
                Verdict::Clean(merged) => {
                    merged.store(&mut plat.machine.mc, dom.vmcb_pa).map_err(GuardError::Hw)?;
                    let regs = shadow.merged_gprs(&dom.gpr_save);
                    plat.machine.cpu.regs.load_array(regs);
                    plat.machine.trace.emit(Event::ShadowVerify {
                        vmcb_pa: dom.vmcb_pa.0,
                        outcome: VerifyOutcome::Clean,
                    });
                }
                Verdict::IllegalField(_f) => {
                    let err = tampered(self, plat, DenialReason::VmcbFieldTampered);
                    // Graceful degradation: restore the clean masked image
                    // from the shadow so the tamper does not brick the
                    // domain, and re-arm the shadow so a retry is still
                    // checked.
                    shadow
                        .masked_vmcb()
                        .store(&mut plat.machine.mc, dom.vmcb_pa)
                        .map_err(GuardError::Hw)?;
                    self.shadows.insert(dom.id, shadow);
                    return Err(err);
                }
                Verdict::BadRipAdvance { .. } => {
                    let err = tampered(self, plat, DenialReason::GuestRipDiverted);
                    shadow
                        .masked_vmcb()
                        .store(&mut plat.machine.mc, dom.vmcb_pa)
                        .map_err(GuardError::Hw)?;
                    self.shadows.insert(dom.id, shadow);
                    return Err(err);
                }
            }
        } else {
            // First entry: verify the control fields against Fidelius's
            // own records (self-maintained SEV metadata).
            if img.get(VmcbField::Asid) != u64::from(meta.asid) {
                return Err(tampered(self, plat, DenialReason::AsidMismatchAtEntry));
            }
            if img.get(VmcbField::NCr3) != meta.npt_root.0 {
                return Err(tampered(self, plat, DenialReason::Ncr3MismatchAtEntry));
            }
            plat.machine.cpu.regs.load_array(dom.gpr_save);
        }
        let mut gates = self.gates.take().expect("late_launch must run first");
        let result = gates.type3(plat, PrivOp::Vmrun(dom.vmcb_pa));
        self.gates = Some(gates);
        result
    }

    fn on_vmexit(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError> {
        self.stats.shadow_round_trips += 1;
        let img = VmcbImage::load(&plat.machine.mc, dom.vmcb_pa).map_err(GuardError::Hw)?;
        let exit = ExitCode::from_raw(img.get(VmcbField::ExitCode))
            .ok_or(GuardError::Policy("unknown exit code"))?;
        let gprs = plat.machine.cpu.regs.as_array();

        // Fidelius directly handles pre_sharing_op at the boundary, from
        // the authentic (pre-masking) register values.
        if exit == ExitCode::Vmmcall
            && gprs[fidelius_hw::regs::Gpr::Rax as usize] == HC_PRE_SHARING_OP
        {
            self.git.register(GitEntry {
                initiator: dom.id,
                target: DomainId(gprs[fidelius_hw::regs::Gpr::Rdi as usize] as u16),
                gpa_page: gprs[fidelius_hw::regs::Gpr::Rsi as usize],
                nframes: gprs[fidelius_hw::regs::Gpr::Rdx as usize],
                writable: gprs[fidelius_hw::regs::Gpr::R10 as usize] & 1 != 0,
            });
        }

        let shadow = ShadowCtx::capture(img, gprs, exit);
        let masked = shadow.masked_vmcb();
        masked.store(&mut plat.machine.mc, dom.vmcb_pa).map_err(GuardError::Hw)?;
        let masked_gprs = shadow.masked_gprs();
        plat.machine.cpu.regs.load_array(masked_gprs);
        dom.gpr_save = masked_gprs;
        self.shadows.insert(dom.id, shadow);

        // Exit-side shadow cost: copy + mask + register save.
        let m = &mut plat.machine;
        m.cycles.charge_as(
            CycleCategory::ShadowVerify,
            VMCB_LINES as f64 * m.cost.copy_cache_line
                + MASKED_FIELDS_NOMINAL as f64 * m.cost.mask_field
                + 16.0 * m.cost.reg_copy
                + m.cost.sanity_check,
        );
        m.trace.emit(Event::ShadowCapture {
            vmcb_pa: dom.vmcb_pa.0,
            masked_fields: MASKED_FIELDS_NOMINAL,
        });
        Ok(())
    }

    fn exec_priv(&mut self, plat: &mut Platform, op: PrivOp) -> Result<(), GuardError> {
        let operand = match op {
            PrivOp::WriteCr3(root) => root.0,
            PrivOp::Vmrun(pa) => pa.0,
            PrivOp::Invlpg(va) => va.0,
            _ => 0,
        };
        match check_instr(&self.instr_ctx, &op) {
            InstrVerdict::Deny(reason) => {
                Err(self.refuse(plat, PolicyObject::Instr, privop_label(&op), operand, 0, reason))
            }
            InstrVerdict::Allow => {
                plat.machine.trace.emit(Event::Decision {
                    object: PolicyObject::Instr,
                    op: privop_label(&op),
                    operand,
                    dom: 0,
                    allowed: true,
                });
                match op {
                    PrivOp::WriteCr3(_) => {
                        let mut gates = self.gates.take().expect("late_launch must run first");
                        let r = gates.type3(plat, op);
                        self.gates = Some(gates);
                        r
                    }
                    PrivOp::Lgdt(_) | PrivOp::Lidt(_) => {
                        let site = if matches!(op, PrivOp::Lgdt(_)) {
                            self.gates_mut().sites.lgdt
                        } else {
                            self.gates_mut().sites.lidt
                        };
                        let site_pa = Hpa(fidelius_xen::platform::FIDELIUS_CODE_PA.0
                            + (site.0 - fidelius_xen::layout::FIDELIUS_CODE_BASE.0));
                        if !self.once.try_use(site_pa) {
                            return Err(self.deny(plat, DenialReason::ExecuteOnceAlreadyUsed));
                        }
                        let mut gates = self.gates.take().expect("gates");
                        let r = gates.type2(plat, op);
                        self.gates = Some(gates);
                        r
                    }
                    _ => {
                        let mut gates = self.gates.take().expect("gates");
                        let r = gates.type2(plat, op);
                        self.gates = Some(gates);
                        r
                    }
                }
            }
        }
    }

    fn io_transform(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        dir: IoDir,
        src_pa: Hpa,
        dst_pa: Hpa,
        len: u64,
        stream: u64,
    ) -> Result<(), GuardError> {
        let meta = self
            .sev_meta
            .get(&dom)
            .copied()
            .ok_or(GuardError::Policy("no SEV context for this domain"))?;
        let helpers = match meta.io {
            Some(h) => h,
            None => {
                let h = plat.firmware.create_io_helpers(meta.handle).map_err(GuardError::Sev)?;
                self.sev_meta.get_mut(&dom).expect("meta exists").io = Some(h);
                h
            }
        };
        match dir {
            IoDir::GuestToShared => plat
                .firmware
                .io_encrypt(&mut plat.machine, helpers.sdom, src_pa, dst_pa, len, stream)
                .map_err(GuardError::Sev),
            IoDir::SharedToGuest => plat
                .firmware
                .io_decrypt(&mut plat.machine, helpers.rdom, src_pa, dst_pa, len, stream)
                .map_err(GuardError::Sev),
        }
    }

    fn io_transform_run(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        dir: IoDir,
        src_pa: Hpa,
        dst_pa: Hpa,
        sectors: u64,
        first_stream: u64,
    ) -> Result<(), GuardError> {
        let meta = self
            .sev_meta
            .get(&dom)
            .copied()
            .ok_or(GuardError::Policy("no SEV context for this domain"))?;
        let helpers = match meta.io {
            Some(h) => h,
            None => {
                let h = plat.firmware.create_io_helpers(meta.handle).map_err(GuardError::Sev)?;
                self.sev_meta.get_mut(&dom).expect("meta exists").io = Some(h);
                h
            }
        };
        // Whole-run SEV commands: one DRAM round trip and a streaming XEX
        // pass over cached key schedules, byte- and cycle-identical to the
        // per-sector default (`io_sector_batch_matches_per_sector_oracle`).
        match dir {
            IoDir::GuestToShared => plat
                .firmware
                .io_encrypt_sectors(
                    &mut plat.machine,
                    helpers.sdom,
                    src_pa,
                    dst_pa,
                    sectors,
                    first_stream,
                )
                .map_err(GuardError::Sev),
            IoDir::SharedToGuest => plat
                .firmware
                .io_decrypt_sectors(
                    &mut plat.machine,
                    helpers.rdom,
                    src_pa,
                    dst_pa,
                    sectors,
                    first_stream,
                )
                .map_err(GuardError::Sev),
        }
    }

    fn on_domain_created(&mut self, plat: &mut Platform, dom: &Domain) -> Result<(), GuardError> {
        self.doms.insert(
            dom.id,
            DomMeta {
                asid: dom.asid.0,
                vmcb_pa: dom.vmcb_pa,
                npt_root: dom.npt_root,
                sealed: false,
            },
        );
        self.assignments.insert(dom.id, HashMap::new());
        self.pit.set(dom.vmcb_pa, PitEntry::new(Usage::Vmcb, dom.id.0, dom.asid.0, false));
        self.pit.set(dom.npt_root, PitEntry::new(Usage::NptPage, dom.id.0, 0, false));
        self.npt_pages
            .insert(dom.npt_root.pfn(), NptPageInfo { dom: dom.id, level: 3, gpa_prefix: 0 });
        self.write_protect_dm(plat, dom.npt_root)?;
        Ok(())
    }

    fn seal_guest(&mut self, plat: &mut Platform, dom: &Domain) -> Result<(), GuardError> {
        // Close the boot window: unmap every private (non-shared) guest
        // frame from the hypervisor's address space (§4.3.4).
        let frames: Vec<Hpa> = self
            .assignments
            .get(&dom.id)
            .map(|m| m.values().copied().collect())
            .unwrap_or_default();
        for f in frames {
            if !self.pit.peek(f).shared() {
                self.unmap_dm(plat, f)?;
            }
        }
        plat.machine.tlb.flush_space(fidelius_hw::tlb::Space::Host);
        plat.machine.cycles.charge_as(CycleCategory::Paging, plat.machine.cost.tlb_flush_full);
        plat.machine.trace.emit(Event::TlbFlush { scope: FlushScope::Space { guest: None } });
        if let Some(m) = self.doms.get_mut(&dom.id) {
            m.sealed = true;
        }
        Ok(())
    }

    fn on_domain_destroyed(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
    ) -> Result<(), GuardError> {
        // SEV teardown (§4.3.8): DEACTIVATE then DECOMMISSION, then erase
        // the metadata.
        if let Some(meta) = self.sev_meta.remove(&dom) {
            let _ = plat.firmware.deactivate(&mut plat.machine, meta.handle);
            let _ = plat.firmware.decommission(meta.handle);
            if let Some(io) = meta.io {
                let _ = plat.firmware.decommission(io.sdom);
                let _ = plat.firmware.decommission(io.rdom);
            }
        }
        self.shadows.remove(&dom);
        self.git.remove_domain(dom);
        // Return frames: PIT → Free, hypervisor mappings restored.
        if let Some(assign) = self.assignments.remove(&dom) {
            for (_gpa, frame) in assign {
                self.pit.clear(frame);
                self.remap_dm(plat, frame, true)?;
            }
        }
        let npt_pages: Vec<u64> =
            self.npt_pages.iter().filter(|(_, i)| i.dom == dom).map(|(pfn, _)| *pfn).collect();
        for pfn in npt_pages {
            self.npt_pages.remove(&pfn);
            let pa = Hpa::from_pfn(pfn);
            self.pit.set(pa, PitEntry::new(Usage::XenData, 0, 0, false));
            self.set_dm_entry(plat, pa, |p| p.with_flags(PTE_WRITABLE))?;
        }
        if let Some(meta) = self.doms.remove(&dom) {
            self.pit.set(meta.vmcb_pa, PitEntry::new(Usage::XenData, 0, 0, false));
        }
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
