//! Fidelius — the paper's primary contribution.
//!
//! A software extension to AMD SEV that protects guest VMs against an
//! untrusted hypervisor by separating critical-resource *management* from
//! service *provisioning*:
//!
//! - [`fidelius::Fidelius`] — the protection context, implemented as a
//!   `fidelius_xen::Guardian`, living at the hypervisor's privilege level
//!   but isolated by non-bypassable memory isolation;
//! - [`gates`] — the three transition gates (WP-toggle / checking-loop /
//!   add-mapping) of §4.1.3;
//! - [`pit`] / [`git`] — the page and grant information tables driving the
//!   policy checks of §5.2;
//! - [`shadow`] — VMCB/register shadowing with exit-reason masking (§4.2.1,
//!   §5.1), the "software SEV-ES";
//! - [`policy`] — the Table-2 instruction policies plus write-once /
//!   execute-once enforcement (§5.3);
//! - [`scanner`] — the binary scanner monopolizing privileged instructions
//!   (§4.1.2);
//! - [`lifecycle`] — full VM life-cycle protection: encrypted boot through
//!   the retrofitted SEND/RECEIVE APIs (§4.3.2–4.3.3), sealing, shutdown;
//! - [`migrate`] — SEV-based VM migration (§4.3.6);
//! - [`audit`] — the §5.3 audit log of blocked operations.
//!
//! # Quick start
//!
//! ```
//! use fidelius_core::fidelius::Fidelius;
//! use fidelius_xen::System;
//!
//! # fn main() -> Result<(), fidelius_xen::XenError> {
//! let sys = System::new(24 * 1024 * 1024, 42, Box::new(Fidelius::new()))?;
//! assert_eq!(sys.guardian.name(), "fidelius");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod fidelius;
pub mod gates;
pub mod git;
pub mod lifecycle;
pub mod migrate;
pub mod pit;
pub mod policy;
pub mod scanner;
pub mod shadow;

pub use fidelius::{Fidelius, FideliusStats};
pub use fidelius_xen::guardian::GuardError;
