//! The attack scenarios and the four-way comparison matrix (§6).

use crate::defense::{build_victim, contains_secret, Defense, VictimSetup, SECRET, SECRET_GPA};
use fidelius_hw::cpu::PrivOp;
use fidelius_hw::memctrl::EncSel;
use fidelius_hw::paging::{Mapper, PhysPtAccess, Pte, PTE_NX, PTE_PRESENT, PTE_WRITABLE};
use fidelius_hw::regs::Gpr;
use fidelius_hw::vmcb::{ExitCode, VmcbField, VmcbImage};
use fidelius_hw::{Gpa, Hpa, PAGE_SIZE};
use fidelius_xen::frontend::{gplayout, IoPath};
use fidelius_xen::hypercall::{GrantOp, HC_GRANT_TABLE_OP, HC_PRE_SHARING_OP, HC_VOID};
use fidelius_xen::layout::{direct_map, XEN_DATA_BASE};

/// Outcome of one attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The attack achieved its goal (data leaked / integrity broken /
    /// control gained).
    Succeeded,
    /// The attack was stopped (fault, policy rejection, or the data was
    /// cryptographically useless).
    Blocked,
    /// The scenario does not apply to this configuration.
    NotApplicable,
}

impl AttackOutcome {
    /// Short cell label for the matrix.
    pub fn label(&self) -> &'static str {
        match self {
            AttackOutcome::Succeeded => "VULNERABLE",
            AttackOutcome::Blocked => "blocked",
            AttackOutcome::NotApplicable => "n/a",
        }
    }
}

/// One attack run's result.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Attack name.
    pub attack: &'static str,
    /// Defense configuration it ran against.
    pub defense: Defense,
    /// What happened.
    pub outcome: AttackOutcome,
    /// Human-readable detail.
    pub detail: String,
}

/// An attack scenario.
#[derive(Clone, Copy)]
pub struct Attack {
    /// Short name (matrix row).
    pub name: &'static str,
    /// What the attacker does and wants.
    pub description: &'static str,
    /// Runs the attack against a fresh victim under `defense`.
    pub run: fn(Defense) -> AttackReport,
}

impl std::fmt::Debug for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Attack").field("name", &self.name).finish()
    }
}

pub(crate) fn report(
    attack: &'static str,
    defense: Defense,
    outcome: AttackOutcome,
    detail: impl Into<String>,
) -> AttackReport {
    AttackReport { attack, defense, outcome, detail: detail.into() }
}

/// Read-only raw page-walk (the attacker can read mapped structures; this
/// is address discovery, not the exploit itself).
fn raw_leaf_entry(v: &mut VictimSetup, root: Hpa, va: u64) -> Option<Hpa> {
    let mapper = Mapper::from_root(root);
    let mut acc = PhysPtAccess::new(&mut v.sys.plat.machine.mc, EncSel::None);
    mapper.leaf_entry_pa(&mut acc, va).ok().flatten()
}

pub(crate) fn victim_frame(v: &VictimSetup, gpa_page: u64) -> Hpa {
    v.sys.xen.domain(v.victim).expect("victim exists").frame_of(gpa_page).expect("populated")
}

/// Puts the victim in guest mode with marker state, then exits, leaving
/// the hypervisor looking at whatever the boundary exposes.
fn run_victim_and_exit(v: &mut VictimSetup) {
    v.sys.ensure_guest(v.victim).expect("enter victim");
    v.sys.plat.machine.cpu.regs.set(Gpr::Rbx, 0x5EC_12E7);
    v.sys.plat.machine.cpu.rip = 0x1234;
    v.sys.exit_and_handle(ExitCode::Hlt, 0, 0).expect("exit");
}

// ----- 1. VMCB confidentiality ---------------------------------------------

fn atk_vmcb_read(defense: Defense) -> AttackReport {
    const NAME: &str = "vmcb-read";
    let mut v = build_victim(defense).expect("victim");
    run_victim_and_exit(&mut v);
    let vmcb_pa = v.sys.xen.domain(v.victim).unwrap().vmcb_pa;
    let img = VmcbImage::load(&v.sys.plat.machine.mc, vmcb_pa).unwrap();
    if img.get(VmcbField::Rip) == 0x1234 {
        report(NAME, defense, AttackOutcome::Succeeded, "guest RIP readable from VMCB")
    } else {
        report(NAME, defense, AttackOutcome::Blocked, "VMCB guest state masked")
    }
}

// ----- 2. Register confidentiality -------------------------------------------

fn atk_register_steal(defense: Defense) -> AttackReport {
    const NAME: &str = "register-steal";
    let mut v = build_victim(defense).expect("victim");
    run_victim_and_exit(&mut v);
    if v.sys.plat.machine.cpu.regs.get(Gpr::Rbx) == 0x5EC_12E7 {
        report(NAME, defense, AttackOutcome::Succeeded, "guest RBX visible after #VMEXIT")
    } else {
        report(NAME, defense, AttackOutcome::Blocked, "registers masked at the boundary")
    }
}

// ----- 3. VMCB integrity: divert guest RIP -----------------------------------

fn atk_vmcb_tamper_rip(defense: Defense) -> AttackReport {
    const NAME: &str = "vmcb-tamper-rip";
    let mut v = build_victim(defense).expect("victim");
    run_victim_and_exit(&mut v);
    let vmcb_pa = v.sys.xen.domain(v.victim).unwrap().vmcb_pa;
    v.sys
        .plat
        .machine
        .host_write_u64(direct_map(vmcb_pa.add(8 * VmcbField::Rip as u64)), 0xDEAD_0000)
        .expect("VMCB page is hypervisor-writable in all configs");
    match v.sys.enter(v.victim) {
        Ok(()) if v.sys.plat.machine.cpu.rip == 0xDEAD_0000 => {
            report(NAME, defense, AttackOutcome::Succeeded, "guest resumed at attacker RIP")
        }
        Ok(()) => report(NAME, defense, AttackOutcome::Blocked, "RIP restored from shadow"),
        Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("entry refused: {e}")),
    }
}

// ----- 4. Disable SEV through the VMCB ----------------------------------------

fn atk_sev_disable(defense: Defense) -> AttackReport {
    const NAME: &str = "sev-bit-clear";
    if defense == Defense::VanillaXen {
        return report(NAME, defense, AttackOutcome::NotApplicable, "no SEV to disable");
    }
    let mut v = build_victim(defense).expect("victim");
    run_victim_and_exit(&mut v);
    let vmcb_pa = v.sys.xen.domain(v.victim).unwrap().vmcb_pa;
    v.sys
        .plat
        .machine
        .host_write_u64(direct_map(vmcb_pa.add(8 * VmcbField::SevEnable as u64)), 0)
        .expect("VMCB page writable");
    match v.sys.enter(v.victim) {
        Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("entry refused: {e}")),
        Ok(()) => {
            // The guest now runs unencrypted: anything it writes lands in
            // plaintext for the hypervisor to scoop up.
            let probe = Gpa((gplayout::HEAP_PAGE + 3) * PAGE_SIZE);
            match v.sys.plat.machine.guest_write_gpa(probe, SECRET, true) {
                Ok(()) => {
                    let frame = victim_frame(&v, gplayout::HEAP_PAGE + 3);
                    let mut raw = [0u8; 24];
                    v.sys.plat.machine.mc.dram().read_raw(frame, &mut raw).unwrap();
                    if &raw == SECRET {
                        report(
                            NAME,
                            defense,
                            AttackOutcome::Succeeded,
                            "SEV disabled; guest writes land in plaintext",
                        )
                    } else {
                        report(NAME, defense, AttackOutcome::Blocked, "still encrypted")
                    }
                }
                Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("{e}")),
            }
        }
    }
}

// ----- 5. Read guest memory through the direct map ----------------------------

fn atk_direct_map_read(defense: Defense) -> AttackReport {
    const NAME: &str = "direct-map-read";
    let mut v = build_victim(defense).expect("victim");
    let frame = victim_frame(&v, gplayout::HEAP_PAGE);
    let mut buf = [0u8; 24];
    match v.sys.plat.machine.host_read(direct_map(frame), &mut buf) {
        Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("unmapped: {e}")),
        Ok(()) if &buf == SECRET => {
            report(NAME, defense, AttackOutcome::Succeeded, "secret read via direct map")
        }
        Ok(()) => report(NAME, defense, AttackOutcome::Blocked, "only ciphertext visible"),
    }
}

// ----- 6. Remap guest memory into the hypervisor's own tables -----------------

fn atk_host_pt_remap(defense: Defense) -> AttackReport {
    const NAME: &str = "host-pt-remap";
    let mut v = build_victim(defense).expect("victim");
    let frame = victim_frame(&v, gplayout::HEAP_PAGE);
    let root = v.sys.xen.host_pt_root;
    let Some(entry_pa) = raw_leaf_entry(&mut v, root, XEN_DATA_BASE.0) else {
        return report(NAME, defense, AttackOutcome::Blocked, "no leaf entry found");
    };
    let rogue = Pte::new(frame, PTE_PRESENT | PTE_WRITABLE | PTE_NX).0;
    match v.sys.plat.machine.host_write_u64(direct_map(entry_pa), rogue) {
        Err(e) => {
            report(NAME, defense, AttackOutcome::Blocked, format!("page tables protected: {e}"))
        }
        Ok(()) => {
            let mut buf = [0u8; 24];
            v.sys.plat.machine.host_read(XEN_DATA_BASE, &mut buf).expect("mapped");
            if &buf == SECRET {
                report(NAME, defense, AttackOutcome::Succeeded, "secret read via rogue mapping")
            } else {
                report(NAME, defense, AttackOutcome::Blocked, "rogue mapping sees ciphertext")
            }
        }
    }
}

// ----- 7. The NPT/memory replay attack -----------------------------------------

fn atk_replay(defense: Defense) -> AttackReport {
    const NAME: &str = "memory-replay";
    let mut v = build_victim(defense).expect("victim");
    let pw_gpa = Gpa((gplayout::HEAP_PAGE + 1) * PAGE_SIZE);
    let sev = v.sev;
    v.sys.gpa_write(v.victim, pw_gpa, b"password=OLDOLD!", sev).unwrap();
    v.sys.ensure_host().unwrap();
    let frame = victim_frame(&v, gplayout::HEAP_PAGE + 1);
    // Snapshot whatever the hypervisor can see of the page (ciphertext
    // under SEV — that is enough for an in-place replay).
    let mut snapshot = [0u8; 16];
    if let Err(e) = v.sys.plat.machine.host_read(direct_map(frame), &mut snapshot) {
        return report(NAME, defense, AttackOutcome::Blocked, format!("cannot snapshot: {e}"));
    }
    // The victim rotates its password.
    v.sys.gpa_write(v.victim, pw_gpa, b"password=NEWNEW!", sev).unwrap();
    v.sys.ensure_host().unwrap();
    // Replay the stale bytes in place.
    if let Err(e) = v.sys.plat.machine.host_write(direct_map(frame), &snapshot) {
        return report(NAME, defense, AttackOutcome::Blocked, format!("cannot replay: {e}"));
    }
    let mut now = [0u8; 16];
    v.sys.gpa_read(v.victim, pw_gpa, &mut now, sev).unwrap();
    if &now == b"password=OLDOLD!" {
        report(NAME, defense, AttackOutcome::Succeeded, "stale password replayed in place")
    } else {
        report(NAME, defense, AttackOutcome::Blocked, "replay did not restore old plaintext")
    }
}

// ----- 8. Collusive VM + ASID abuse ---------------------------------------------

fn atk_collusive_asid(defense: Defense) -> AttackReport {
    const NAME: &str = "collusive-asid-remap";
    let mut v = build_victim(defense).expect("victim");
    let victim_frame = victim_frame(&v, gplayout::HEAP_PAGE);
    let victim_asid = v.sys.xen.domain(v.victim).unwrap().asid;
    // The hypervisor builds a fresh "attacker" domain shell.
    let attacker = v
        .sys
        .xen
        .create_domain(&mut v.sys.plat, &mut *v.sys.guardian, 16)
        .expect("create attacker shell");
    let npt_root = v.sys.xen.domain(attacker).unwrap().npt_root;
    // Map the victim's frame at attacker GPA 0 by writing the attacker's
    // NPT directly (allocating intermediate tables from the heap).
    let mut table = npt_root;
    let mut raw_fail = None;
    for level in (1..=3u8).rev() {
        let entry_pa = table.add(fidelius_hw::paging::table_index(0, level) * 8);
        let new_table = v.sys.xen.heap.alloc().expect("heap");
        let zero = [0u8; PAGE_SIZE as usize];
        if let Err(e) = v.sys.plat.machine.host_write(direct_map(new_table), &zero) {
            raw_fail = Some(format!("{e}"));
            break;
        }
        let pte = Pte::new(new_table, PTE_PRESENT | PTE_WRITABLE).0;
        if let Err(e) = v.sys.plat.machine.host_write_u64(direct_map(entry_pa), pte) {
            raw_fail = Some(format!("{e}"));
            break;
        }
        table = new_table;
    }
    if let Some(e) = raw_fail {
        return report(NAME, defense, AttackOutcome::Blocked, format!("NPT protected: {e}"));
    }
    let leaf_pa = table.add(0);
    if let Err(e) = v
        .sys
        .plat
        .machine
        .host_write_u64(direct_map(leaf_pa), Pte::new(victim_frame, PTE_PRESENT | PTE_WRITABLE).0)
    {
        return report(NAME, defense, AttackOutcome::Blocked, format!("NPT protected: {e}"));
    }
    // Give the attacker VMCB the *victim's* ASID (the firmware installed
    // the victim's key for it) and run it.
    let sev = v.sev;
    v.sys.xen.init_vmcb(&mut v.sys.plat, attacker, Gpa(0), 0, sev).expect("vmcb init");
    let vmcb_pa = v.sys.xen.domain(attacker).unwrap().vmcb_pa;
    v.sys
        .plat
        .machine
        .host_write_u64(
            direct_map(vmcb_pa.add(8 * VmcbField::Asid as u64)),
            u64::from(victim_asid.0),
        )
        .expect("VMCB writable");
    match v.sys.enter(attacker) {
        Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("entry refused: {e}")),
        Ok(()) => {
            let mut buf = [0u8; 24];
            match v.sys.plat.machine.guest_read_gpa(Gpa(SECRET_GPA.page_offset()), &mut buf, sev) {
                Ok(()) if &buf == SECRET => report(
                    NAME,
                    defense,
                    AttackOutcome::Succeeded,
                    "collusive VM read victim plaintext via shared ASID",
                ),
                Ok(()) => report(NAME, defense, AttackOutcome::Blocked, "wrong-key garbage"),
                Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("{e}")),
            }
        }
    }
}

// ----- 9. Grant permission escalation -------------------------------------------

fn atk_grant_escalation(defense: Defense) -> AttackReport {
    const NAME: &str = "grant-escalation";
    let mut v = build_victim(defense).expect("victim");
    let page = gplayout::HEAP_PAGE + 2;
    let sev = v.sev;
    v.sys.gpa_write(v.victim, Gpa(page * PAGE_SIZE), b"read-only shared data...", false).unwrap();
    // Victim shares read-only with dom0 (pre_sharing first for Fidelius).
    let _ = v.sys.hypercall(v.victim, HC_PRE_SHARING_OP, [0, page, 1, 0]).unwrap();
    let r = v
        .sys
        .hypercall(v.victim, HC_GRANT_TABLE_OP, [GrantOp::GrantAccess as u64, 0, page, 0])
        .unwrap();
    v.sys.ensure_host().unwrap();
    if r >= fidelius_xen::grants::GRANT_TABLE_ENTRIES {
        return report(NAME, defense, AttackOutcome::Blocked, "grant itself rejected");
    }
    // The hypervisor flips the writable bit in the grant entry.
    let entry_pa = v.sys.xen.grant_table_pa.add(r * fidelius_xen::grants::GRANT_ENTRY_SIZE);
    let word0 = v.sys.plat.machine.host_read_u64(direct_map(entry_pa)).unwrap();
    if let Err(e) = v.sys.plat.machine.host_write_u64(direct_map(entry_pa), word0 | 2) {
        return report(
            NAME,
            defense,
            AttackOutcome::Blocked,
            format!("grant table protected: {e}"),
        );
    }
    // dom0 now "legitimately" writes through the escalated grant.
    let frame = victim_frame(&v, page);
    if v.sys.plat.machine.host_write(direct_map(frame), b"OVERWRITTEN BY DOM0!!!").is_err() {
        return report(NAME, defense, AttackOutcome::Blocked, "shared frame not writable");
    }
    let mut now = [0u8; 22];
    v.sys.gpa_read(v.victim, Gpa(page * PAGE_SIZE), &mut now, false).unwrap();
    let _ = sev;
    if &now == b"OVERWRITTEN BY DOM0!!!" {
        report(NAME, defense, AttackOutcome::Succeeded, "read-only share was overwritten")
    } else {
        report(NAME, defense, AttackOutcome::Blocked, "victim data intact")
    }
}

// ----- 10. Grant fabrication ------------------------------------------------------

fn atk_grant_fabrication(defense: Defense) -> AttackReport {
    const NAME: &str = "grant-fabrication";
    let mut v = build_victim(defense).expect("victim");
    let frame = victim_frame(&v, gplayout::HEAP_PAGE);
    // The hypervisor fabricates a grant entry: "the victim shares its
    // secret page with dom0" — no guest ever asked for that.
    let entry = fidelius_xen::grants::GrantEntry {
        valid: true,
        writable: false,
        owner: v.victim.0,
        grantee: 0,
        gpa_page: gplayout::HEAP_PAGE,
        frame,
    };
    let base = v.sys.xen.grant_table_pa.add(7 * fidelius_xen::grants::GRANT_ENTRY_SIZE);
    for (i, w) in entry.to_words().iter().enumerate() {
        if let Err(e) = v.sys.plat.machine.host_write_u64(direct_map(base.add(8 * i as u64)), *w) {
            return report(
                NAME,
                defense,
                AttackOutcome::Blocked,
                format!("grant table protected: {e}"),
            );
        }
    }
    // dom0 "maps" the fabricated grant and reads.
    let mut buf = [0u8; 24];
    match v.sys.plat.machine.host_read(direct_map(frame), &mut buf) {
        Ok(()) if &buf == SECRET => {
            report(NAME, defense, AttackOutcome::Succeeded, "fabricated grant leaked plaintext")
        }
        Ok(()) => {
            report(NAME, defense, AttackOutcome::Blocked, "only ciphertext via fabricated grant")
        }
        Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("{e}")),
    }
}

// ----- 11. Rogue VMRUN ---------------------------------------------------------------

fn atk_rogue_vmrun(defense: Defense) -> AttackReport {
    const NAME: &str = "rogue-vmrun";
    let mut v = build_victim(defense).expect("victim");
    // Forge a VMCB impersonating the victim.
    let forged = v.sys.xen.heap.alloc().expect("heap");
    let victim_dom = v.sys.xen.domain(v.victim).unwrap();
    let mut img = VmcbImage::new();
    img.set(VmcbField::Asid, u64::from(victim_dom.asid.0))
        .set(VmcbField::SevEnable, u64::from(v.sev))
        .set(VmcbField::NCr3, victim_dom.npt_root.0)
        .set(VmcbField::Rip, 0x1000);
    img.store(&mut v.sys.plat.machine.mc, forged).unwrap();
    // Execute VMRUN from the hypervisor's own code, bypassing the
    // guardian entirely.
    let site = v.sys.xen.xen_sites.vmrun;
    match v.sys.plat.machine.exec_priv(site, PrivOp::Vmrun(forged)) {
        Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("vmrun unavailable: {e}")),
        Ok(()) => {
            let mut buf = [0u8; 24];
            let got = v.sys.plat.machine.guest_read_gpa(SECRET_GPA, &mut buf, v.sev).is_ok()
                && &buf == SECRET;
            v.sys.plat.machine.vmexit(ExitCode::Hlt, 0, 0).ok();
            if got {
                report(NAME, defense, AttackOutcome::Succeeded, "forged VMCB impersonated victim")
            } else {
                report(
                    NAME,
                    defense,
                    AttackOutcome::Succeeded,
                    "rogue VMRUN executed (control hijack)",
                )
            }
        }
    }
}

// ----- 12. Clear CR0.WP ---------------------------------------------------------------

fn atk_cr0_wp_clear(defense: Defense) -> AttackReport {
    const NAME: &str = "cr0-wp-clear";
    let mut v = build_victim(defense).expect("victim");
    let site = v.sys.xen.xen_sites.write_cr0;
    let op = PrivOp::WriteCr0(fidelius_hw::regs::Cr0 { pg: true, wp: false });
    // First try the raw instruction in the hypervisor's code…
    let direct = v.sys.plat.machine.exec_priv(site, op);
    // …then the polite route through the guardian.
    let polite = v.sys.guardian.exec_priv(&mut v.sys.plat, op);
    if v.sys.plat.machine.cpu.cr0.wp {
        report(
            NAME,
            defense,
            AttackOutcome::Blocked,
            format!("WP still set (direct: {direct:?}, guarded: {polite:?})"),
        )
    } else {
        report(NAME, defense, AttackOutcome::Succeeded, "write protection disabled")
    }
}

// ----- 13. Cold boot -------------------------------------------------------------------

fn atk_cold_boot(defense: Defense) -> AttackReport {
    const NAME: &str = "cold-boot-dump";
    let v = build_victim(defense).expect("victim");
    let dram = v.sys.plat.machine.mc.dram();
    let mut dump = vec![0u8; dram.size() as usize];
    dram.read_raw(Hpa(0), &mut dump).unwrap();
    if contains_secret(&dump) {
        report(NAME, defense, AttackOutcome::Succeeded, "secret found in DRAM dump")
    } else {
        report(NAME, defense, AttackOutcome::Blocked, "DRAM holds only ciphertext")
    }
}

// ----- 14. Targeted Rowhammer -----------------------------------------------------------

fn atk_rowhammer(defense: Defense) -> AttackReport {
    const NAME: &str = "rowhammer-targeted";
    let mut v = build_victim(defense).expect("victim");
    let frame = victim_frame(&v, gplayout::HEAP_PAGE);
    // Flip bit 0 of the secret's last byte; the attacker's goal is the
    // *predicted* value ('1' → '0').
    v.sys.plat.machine.mc.dram_mut().flip_bit(frame.add(23), 0).unwrap();
    let mut now = [0u8; 24];
    v.sys.gpa_read(v.victim, SECRET_GPA, &mut now, v.sev).unwrap();
    let mut predicted = *SECRET;
    predicted[23] ^= 1;
    if now == predicted {
        report(NAME, defense, AttackOutcome::Succeeded, "targeted single-bit flip achieved")
    } else {
        report(
            NAME,
            defense,
            AttackOutcome::Blocked,
            "flip garbled a whole cipher block (no targeted control)",
        )
    }
}

// ----- 15. Driver-domain disk snooping ----------------------------------------------------

fn atk_disk_snoop(defense: Defense) -> AttackReport {
    const NAME: &str = "disk-snoop";
    let mut v = build_victim(defense).expect("victim");
    let (path, kblk) = match defense {
        Defense::Fidelius => (IoPath::AesNi, Some([0x4B; 16])),
        _ => (IoPath::Plain, None),
    };
    let disk = vec![0u8; 64 * fidelius_crypto::modes::SECTOR_SIZE];
    v.sys.setup_block_device(v.victim, disk, path, kblk).expect("block device");
    let mut sector = vec![0u8; fidelius_crypto::modes::SECTOR_SIZE];
    sector[..24].copy_from_slice(SECRET);
    v.sys.disk_write(v.victim, 3, &sector).expect("disk write");
    v.sys.ensure_host().unwrap();
    if contains_secret(v.sys.xen.backend.disk()) {
        report(NAME, defense, AttackOutcome::Succeeded, "driver domain read I/O plaintext")
    } else {
        report(NAME, defense, AttackOutcome::Blocked, "disk holds only ciphertext")
    }
}

// ----- 16. Iago-style RIP diversion through a hypercall -------------------------------------

fn atk_iago_rip(defense: Defense) -> AttackReport {
    const NAME: &str = "iago-rip-divert";
    let mut v = build_victim(defense).expect("victim");
    v.sys.ensure_guest(v.victim).unwrap();
    let regs = &mut v.sys.plat.machine.cpu.regs;
    regs.set(Gpr::Rax, HC_VOID);
    v.sys.exit_and_handle(ExitCode::Vmmcall, 0, 0).unwrap();
    // The hypervisor "handles" the hypercall but sets a malicious resume
    // point deep inside the guest.
    let vmcb_pa = v.sys.xen.domain(v.victim).unwrap().vmcb_pa;
    let rip_field = direct_map(vmcb_pa.add(8 * VmcbField::Rip as u64));
    let cur = v.sys.plat.machine.host_read_u64(rip_field).unwrap();
    v.sys.plat.machine.host_write_u64(rip_field, cur + 300).unwrap();
    match v.sys.enter(v.victim) {
        Ok(()) if v.sys.plat.machine.cpu.rip == cur + 300 => {
            report(NAME, defense, AttackOutcome::Succeeded, "hypercall return diverted guest")
        }
        Ok(()) => report(NAME, defense, AttackOutcome::Blocked, "resume point corrected"),
        Err(e) => report(NAME, defense, AttackOutcome::Blocked, format!("entry refused: {e}")),
    }
}

/// Every scenario, in matrix order.
pub fn all_attacks() -> Vec<Attack> {
    vec![
        Attack {
            name: "vmcb-read",
            description: "read guest RIP/CR3 from the unencrypted VMCB",
            run: atk_vmcb_read,
        },
        Attack {
            name: "register-steal",
            description: "read guest GPRs after #VMEXIT",
            run: atk_register_steal,
        },
        Attack {
            name: "vmcb-tamper-rip",
            description: "divert guest control flow via VMCB.RIP",
            run: atk_vmcb_tamper_rip,
        },
        Attack {
            name: "sev-bit-clear",
            description: "clear the SEV enable bit before re-entry",
            run: atk_sev_disable,
        },
        Attack {
            name: "direct-map-read",
            description: "read guest memory through the hypervisor direct map",
            run: atk_direct_map_read,
        },
        Attack {
            name: "host-pt-remap",
            description: "remap guest frames into the hypervisor's page tables",
            run: atk_host_pt_remap,
        },
        Attack {
            name: "memory-replay",
            description: "replay stale (cipher)text in place to roll back guest state",
            run: atk_replay,
        },
        Attack {
            name: "collusive-asid-remap",
            description: "map victim memory into a collusive VM running under the victim's ASID",
            run: atk_collusive_asid,
        },
        Attack {
            name: "grant-escalation",
            description: "flip a read-only grant to writable in the grant table",
            run: atk_grant_escalation,
        },
        Attack {
            name: "grant-fabrication",
            description: "fabricate a grant entry the guest never created",
            run: atk_grant_fabrication,
        },
        Attack {
            name: "rogue-vmrun",
            description: "VMRUN a forged VMCB from hijacked hypervisor control flow",
            run: atk_rogue_vmrun,
        },
        Attack {
            name: "cr0-wp-clear",
            description: "disable CR0.WP to unprotect all read-only structures",
            run: atk_cr0_wp_clear,
        },
        Attack {
            name: "cold-boot-dump",
            description: "dump DRAM and scan for secrets (physical attack)",
            run: atk_cold_boot,
        },
        Attack {
            name: "rowhammer-targeted",
            description: "flip a chosen guest memory bit (physical attack)",
            run: atk_rowhammer,
        },
        Attack {
            name: "disk-snoop",
            description: "driver domain inspects PV disk I/O data",
            run: atk_disk_snoop,
        },
        Attack {
            name: "iago-rip-divert",
            description: "malicious hypercall return diverts the guest",
            run: atk_iago_rip,
        },
    ]
    .into_iter()
    .chain(crate::successors::successor_attacks())
    .collect()
}

/// Runs every attack against every defense; the §6 comparison matrix.
pub fn run_matrix() -> Vec<AttackReport> {
    run_matrix_par(1)
}

/// Runs every attack against every defense across up to `threads` worker
/// threads. Each `(attack, defense)` cell builds its own fresh victim, so
/// cells are shared-nothing; results come back in the sequential order
/// ([`all_attacks`] outer, [`Defense::ALL`] inner) at any thread count.
pub fn run_matrix_par(threads: usize) -> Vec<AttackReport> {
    let cells: Vec<(Attack, Defense)> = all_attacks()
        .into_iter()
        .flat_map(|attack| Defense::ALL.into_iter().map(move |defense| (attack, defense)))
        .collect();
    fidelius_par::par_map_ordered(&cells, threads, |_, &(attack, defense)| (attack.run)(defense))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(attack: fn(Defense) -> AttackReport, d: Defense) -> AttackOutcome {
        attack(d).outcome
    }

    use AttackOutcome::{Blocked, NotApplicable, Succeeded};
    use Defense::{Fidelius, VanillaXen, XenSev, XenSevEs};

    #[test]
    fn parallel_matrix_matches_sequential() {
        let seq = run_matrix();
        let par = run_matrix_par(4);
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.len(), all_attacks().len() * Defense::ALL.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.attack, p.attack);
            assert_eq!(s.defense, p.defense);
            assert_eq!(s.outcome, p.outcome);
            assert_eq!(s.detail, p.detail);
        }
    }

    #[test]
    fn fidelius_blocks_every_attack() {
        for attack in all_attacks() {
            let rep = (attack.run)(Fidelius);
            assert_eq!(
                rep.outcome, Blocked,
                "{} must be blocked under Fidelius: {}",
                attack.name, rep.detail
            );
        }
    }

    #[test]
    fn vanilla_xen_is_wide_open() {
        for attack in all_attacks() {
            let rep = (attack.run)(VanillaXen);
            assert!(
                rep.outcome == Succeeded || rep.outcome == NotApplicable,
                "{} should succeed against vanilla Xen: {}",
                attack.name,
                rep.detail
            );
        }
    }

    #[test]
    fn sev_stops_memory_reads_but_not_state_attacks() {
        assert_eq!(outcome(atk_direct_map_read, XenSev), Blocked);
        assert_eq!(outcome(atk_cold_boot, XenSev), Blocked);
        // The §2.2 weaknesses:
        assert_eq!(outcome(atk_vmcb_read, XenSev), Succeeded);
        assert_eq!(outcome(atk_register_steal, XenSev), Succeeded);
        assert_eq!(outcome(atk_vmcb_tamper_rip, XenSev), Succeeded);
        assert_eq!(outcome(atk_sev_disable, XenSev), Succeeded);
        assert_eq!(outcome(atk_replay, XenSev), Succeeded);
        assert_eq!(outcome(atk_collusive_asid, XenSev), Succeeded);
    }

    #[test]
    fn sev_es_closes_vmcb_but_not_mapping_attacks() {
        assert_eq!(outcome(atk_vmcb_read, XenSevEs), Blocked);
        assert_eq!(outcome(atk_register_steal, XenSevEs), Blocked);
        assert_eq!(outcome(atk_vmcb_tamper_rip, XenSevEs), Blocked);
        // Still broken even with SEV-ES (paper §2.2):
        assert_eq!(outcome(atk_replay, XenSevEs), Succeeded);
        assert_eq!(outcome(atk_collusive_asid, XenSevEs), Succeeded);
        assert_eq!(outcome(atk_grant_escalation, XenSevEs), Succeeded);
    }

    #[test]
    fn io_is_unprotected_without_fidelius() {
        assert_eq!(outcome(atk_disk_snoop, XenSev), Succeeded);
        assert_eq!(outcome(atk_disk_snoop, Fidelius), Blocked);
    }
}
