//! Successor attacks from the post-SEV literature, run as first-class
//! adversaries against every defense column.
//!
//! The original matrix ([`crate::scenarios`]) covers the attack surface the
//! Fidelius paper itself enumerates (§2, §6). This module adds the three
//! attacks published *after* SEV shipped that define the modern bar:
//!
//! * **SEVered** (Morbitzer, Huber, Horsch, Wessel — EuroSec'18): the
//!   hypervisor remaps a guest-physical page that a live network/disk
//!   service legitimately serves, onto the frame holding a secret. The PA
//!   tweak is keyed to the *physical* frame, which never moved, so the
//!   guest decrypts the secret perfectly at the wrong GPA and ships the
//!   plaintext out through its own I/O path. No key is ever touched.
//! * **SEVurity** (Wilke, Wichelmann, Morbitzer, Eisenbarth — IEEE S&P'20):
//!   XEX with a public position-dependent tweak is move-malleable. For a
//!   16-byte block `C = E(P ⊕ T(src)) ⊕ T(src)`, placing
//!   `C ⊕ T(src) ⊕ T(dst)` at `dst` decrypts to `P ⊕ T(src) ⊕ T(dst)` —
//!   a fully attacker-predicted plaintext, computed without any key
//!   material from a hypervisor-known plaintext block.
//! * **Attestation rollback**: vanilla SEV firmware keeps no launch-session
//!   ledger, so a hypervisor can replay a stale (e.g. vulnerable-kernel)
//!   owner session and have the platform attest it as fresh. The
//!   retrofitted firmware's consumed-nonce ledger refuses the replay at
//!   `RECEIVE_START` (and the same ledger covers migration receives, see
//!   `fidelius_core::migrate`).
//!
//! Each attack reports a typed [`DenialReason`] when blocked, emits an
//! [`Event::AttackOutcome`] on the victim machine's trace, and appears as a
//! row of the §6 matrix (`fidelius_attacks::run_matrix`). The catalog in
//! `docs/THREAT_MODEL.md` cross-links every row to the regression tests at
//! the bottom of this file.

use crate::defense::{
    build_victim, contains_secret, firmware_mode_for, guardian_for, Defense, VictimSetup,
    ATTACK_DRAM, SECRET_GPA,
};
use crate::scenarios::{report, victim_frame, Attack, AttackOutcome, AttackReport};
use fidelius_core::lifecycle::boot_encrypted_guest;
use fidelius_crypto::modes::{PaTweakCipher, SECTOR_SIZE};
use fidelius_hw::inject::{FaultAction, FaultInjector, InjectPoint};
use fidelius_hw::paging::PTE_WRITABLE;
use fidelius_hw::vmcb::ExitCode;
use fidelius_hw::{Gpa, PAGE_SIZE};
use fidelius_sev::GuestOwner;
use fidelius_telemetry::{DenialReason, Event};
use fidelius_xen::frontend::{gplayout, IoPath};
use fidelius_xen::layout::direct_map;
use fidelius_xen::{System, XenError};

/// The successor-attack rows, in matrix order.
pub fn successor_attacks() -> Vec<Attack> {
    vec![
        Attack {
            name: "severed-io-remap",
            description: "SEVered: NPT remap under a live blkif service routes a \
                          victim page's plaintext out through the guest's own I/O path",
            run: atk_severed,
        },
        Attack {
            name: "sevurity-tweak-inject",
            description: "SEVurity: XEX tweak malleability turns a ciphertext move \
                          into an attacker-predicted plaintext write",
            run: atk_sevurity,
        },
        Attack {
            name: "attestation-rollback",
            description: "replay a stale owner session so the platform attests an \
                          old measurement as fresh at LAUNCH",
            run: atk_attestation_rollback,
        },
    ]
}

/// Stamps the run's verdict onto the victim machine's trace so the flight
/// recorder and the telemetry metrics see attack outcomes alongside
/// denials and fault outcomes.
fn emit_outcome(
    sys: &System,
    attack: &'static str,
    defense: Defense,
    outcome: &AttackOutcome,
    reason: Option<DenialReason>,
) {
    sys.plat.machine.trace.emit(Event::AttackOutcome {
        attack,
        defense: defense.label(),
        outcome: outcome.label(),
        reason,
    });
}

/// Most recent typed denial on the trace, if any.
fn last_denial(sys: &System) -> Option<DenialReason> {
    sys.plat.machine.trace.events().iter().rev().find_map(|e| match &e.event {
        Event::Denial { reason } => Some(*reason),
        _ => None,
    })
}

// ----- 17. SEVered: remap under a live I/O service ---------------------------

fn atk_severed(defense: Defense) -> AttackReport {
    severed_run(defense).1
}

pub(crate) fn severed_run(defense: Defense) -> (VictimSetup, AttackReport) {
    const NAME: &str = "severed-io-remap";
    let mut v = build_victim(defense).expect("victim");

    // A live block service: the victim's frontend keeps serving pages to
    // the hypervisor-owned backend, exactly the resource SEVered abuses.
    let (io_path, kblk) = if defense == Defense::Fidelius {
        (IoPath::AesNi, Some([0x4B; 16]))
    } else {
        (IoPath::Plain, None)
    };
    v.sys.setup_block_device(v.victim, vec![0u8; 64 * SECTOR_SIZE], io_path, kblk).expect("blkif");

    // The page the service legitimately serves out.
    let served_page = gplayout::HEAP_PAGE + 4;
    let served_gpa = Gpa(served_page * PAGE_SIZE);
    v.sys.gpa_write(v.victim, served_gpa, b"public web asset", v.sev).expect("served content");
    v.sys.ensure_host().expect("host");

    // SEVered's one move: while the service runs, remap the *served* GPA
    // onto the frame holding the secret. The PA tweak is keyed to the
    // physical frame, which did not move, so the guest decrypts the secret
    // perfectly at the wrong GPA — no key is ever attacked.
    let secret_frame = victim_frame(&v, gplayout::HEAP_PAGE);
    let remap = v.sys.xen.npt_map(
        &mut v.sys.plat,
        &mut *v.sys.guardian,
        v.victim,
        served_page,
        secret_frame,
        PTE_WRITABLE,
    );

    let rep = match remap {
        Err(e) => {
            // Fidelius vets every NPT write: remapping a populated GPA is
            // refused with a typed reason before the service can leak.
            let reason = last_denial(&v.sys);
            let detail = match reason {
                Some(r) => format!("remap refused: {}", r.as_str()),
                None => format!("remap refused: {e:?}"),
            };
            let rep = report(NAME, defense, AttackOutcome::Blocked, detail);
            emit_outcome(&v.sys, NAME, defense, &rep.outcome, reason);
            rep
        }
        Ok(()) => {
            // The guest dutifully serves "its" page: reads the remapped GPA
            // through its own mappings and writes it out to disk.
            let mut sector = vec![0u8; SECTOR_SIZE];
            v.sys.gpa_read(v.victim, served_gpa, &mut sector[..64], v.sev).expect("serve read");
            v.sys.disk_write(v.victim, 7, &sector).expect("serve write");
            v.sys.ensure_host().expect("host");
            let rep = if contains_secret(v.sys.xen.backend.disk()) {
                report(
                    NAME,
                    defense,
                    AttackOutcome::Succeeded,
                    "secret exfiltrated in plaintext through the guest's own I/O path",
                )
            } else {
                report(
                    NAME,
                    defense,
                    AttackOutcome::Blocked,
                    "remap landed but no plaintext left the guest",
                )
            };
            emit_outcome(&v.sys, NAME, defense, &rep.outcome, None);
            rep
        }
    };
    (v, rep)
}

// ----- 18. SEVurity: tweak-malleability ciphertext injection -----------------

fn atk_sevurity(defense: Defense) -> AttackReport {
    sevurity_run(defense).1
}

/// One-shot post-exit ciphertext splice, for the sealed-frame fallback.
#[derive(Debug)]
struct OneShotSplice(Option<FaultAction>);

impl FaultInjector for OneShotSplice {
    fn decide(&mut self, point: InjectPoint) -> Option<FaultAction> {
        if point == InjectPoint::PostExit {
            self.0.take()
        } else {
            None
        }
    }
}

pub(crate) fn sevurity_run(defense: Defense) -> (VictimSetup, AttackReport) {
    const NAME: &str = "sevurity-tweak-inject";
    let mut v = build_victim(defense).expect("victim");

    let src_frame = victim_frame(&v, gplayout::KERNEL_PAGE);
    let dst_frame = victim_frame(&v, gplayout::HEAP_PAGE);

    let rep = if !v.sev {
        // Degenerate case: without encryption the "malleability" is just a
        // direct write of fully chosen bytes.
        let chosen = *b"OWNED-BY-HV-0001";
        v.sys.plat.machine.host_write(direct_map(dst_frame), &chosen).expect("direct write");
        let mut got = [0u8; 16];
        v.sys.gpa_read(v.victim, SECRET_GPA, &mut got, false).expect("read back");
        let rep = if got == chosen {
            report(
                NAME,
                defense,
                AttackOutcome::Succeeded,
                "no encryption: hypervisor wrote fully chosen plaintext into the guest",
            )
        } else {
            report(NAME, defense, AttackOutcome::Blocked, "direct write did not land")
        };
        emit_outcome(&v.sys, NAME, defense, &rep.outcome, None);
        rep
    } else {
        // The hypervisor knows the plaintext of the kernel page: it loaded
        // the (zero-padded) image itself during the vanilla launch flow.
        let mut known = [0u8; 16];
        known[..13].copy_from_slice(b"victim kernel");

        // Both tweaks are public functions of the physical address.
        let t_src = PaTweakCipher::tweak_mask(src_frame.0);
        let t_dst = PaTweakCipher::tweak_mask(dst_frame.0);

        // Capture the known-plaintext ciphertext block (physical recorder),
        // then re-tweak it for the destination: C' = C ⊕ T(src) ⊕ T(dst).
        let mut ct = [0u8; 16];
        v.sys.plat.machine.mc.dram().read_raw(src_frame, &mut ct).expect("dram capture");
        let mut adjusted = [0u8; 16];
        let mut predicted = [0u8; 16];
        for i in 0..16 {
            adjusted[i] = ct[i] ^ t_src[i] ^ t_dst[i];
            predicted[i] = known[i] ^ t_src[i] ^ t_dst[i];
        }

        // The move SEV alone permits: a software write of attacker-chosen
        // bytes through the hypervisor's (unencrypted) direct map.
        match v.sys.plat.machine.host_write(direct_map(dst_frame), &adjusted) {
            Ok(()) => {
                let mut got = [0u8; 16];
                v.sys.gpa_read(v.victim, SECRET_GPA, &mut got, true).expect("guest read");
                v.sys.ensure_host().expect("host");
                let rep = if got == predicted {
                    report(
                        NAME,
                        defense,
                        AttackOutcome::Succeeded,
                        "tweak-adjusted ciphertext move decrypted to the attacker-predicted \
                         16-byte plaintext inside the guest",
                    )
                } else {
                    report(
                        NAME,
                        defense,
                        AttackOutcome::Blocked,
                        "injected block decrypted to garbage (tweak not recoverable)",
                    )
                };
                emit_outcome(&v.sys, NAME, defense, &rep.outcome, None);
                rep
            }
            Err(_) => {
                // Sealed frames have no hypervisor mapping, so the direct
                // write faults before any ciphertext lands. Drive the same
                // injection through the adversary hook to get the audited,
                // typed verdict for the matrix.
                v.sys.plat.machine.inject.install(Box::new(OneShotSplice(Some(
                    FaultAction::SpliceCiphertext { page_hint: 0 },
                ))));
                v.sys.ensure_guest(v.victim).expect("enter victim");
                v.sys.exit_and_handle(ExitCode::Hlt, 0, 0).expect("exit");
                v.sys.plat.machine.inject.clear();
                let reason = last_denial(&v.sys);
                let detail = match reason {
                    Some(r) => format!("ciphertext injection refused: {}", r.as_str()),
                    None => "direct write faulted (frame sealed)".to_string(),
                };
                let rep = report(NAME, defense, AttackOutcome::Blocked, detail);
                emit_outcome(&v.sys, NAME, defense, &rep.outcome, reason);
                rep
            }
        }
    };
    (v, rep)
}

// ----- 19. Attestation rollback ----------------------------------------------

fn atk_attestation_rollback(defense: Defense) -> AttackReport {
    rollback_run(defense).1
}

pub(crate) fn rollback_run(defense: Defense) -> (Option<System>, AttackReport) {
    const NAME: &str = "attestation-rollback";
    if defense == Defense::VanillaXen {
        return (
            None,
            report(NAME, defense, AttackOutcome::NotApplicable, "no attestation to roll back"),
        );
    }

    let mut sys = System::new_with_firmware(
        ATTACK_DRAM,
        0x0711_BACC,
        firmware_mode_for(defense),
        guardian_for(defense),
    )
    .expect("system");

    // The owner boots v1 of their kernel — once.
    let mut owner = GuestOwner::new(0x0077_04E2);
    let v1 = owner.package_image(b"victim kernel v1 (vulnerable)", &sys.plat.firmware.pdh_public());
    let first = boot_encrypted_guest(&mut sys, &v1, 192).expect("v1 boots once");
    sys.ensure_host().expect("host");

    // The owner has since shipped a patched v2. The hypervisor drops it on
    // the floor and replays the stale v1 session at the next launch: on
    // vanilla firmware the platform happily attests the old measurement as
    // fresh; the retrofit's consumed-nonce ledger refuses at RECEIVE_START.
    let _v2 =
        owner.package_image(b"victim kernel v2 (patched)   ", &sys.plat.firmware.pdh_public());
    let rep = match boot_encrypted_guest(&mut sys, &v1, 192) {
        Err(XenError::FailClosed(r)) => {
            let rep = report(
                NAME,
                defense,
                AttackOutcome::Blocked,
                format!("stale launch refused: {}", r.as_str()),
            );
            emit_outcome(&sys, NAME, defense, &rep.outcome, Some(r));
            rep
        }
        Err(e) => {
            let rep = report(
                NAME,
                defense,
                AttackOutcome::Blocked,
                format!("stale launch refused: {e:?}"),
            );
            emit_outcome(&sys, NAME, defense, &rep.outcome, last_denial(&sys));
            rep
        }
        Ok(second) => {
            // The rolled-back (vulnerable) kernel runs again, attested as
            // current. Read its marker back to prove which one booted.
            let mut head = [0u8; 16];
            sys.gpa_read(second, Gpa(gplayout::KERNEL_PAGE * PAGE_SIZE), &mut head, true)
                .expect("read stale kernel");
            sys.ensure_host().expect("host");
            let rep = if &head == b"victim kernel v1" {
                report(
                    NAME,
                    defense,
                    AttackOutcome::Succeeded,
                    "stale measurement accepted: rolled-back kernel attested as fresh",
                )
            } else {
                report(
                    NAME,
                    defense,
                    AttackOutcome::Blocked,
                    "replay accepted but stale kernel absent",
                )
            };
            emit_outcome(&sys, NAME, defense, &rep.outcome, None);
            let _ = first;
            rep
        }
    };
    (Some(sys), rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    // These test names are the cross-link targets used by
    // docs/THREAT_MODEL.md — keep them in sync with the catalog.

    #[test]
    fn severed_exfiltrates_secret_on_vanilla_sev() {
        for d in [Defense::VanillaXen, Defense::XenSev, Defense::XenSevEs] {
            let (_v, rep) = severed_run(d);
            assert_eq!(rep.outcome, AttackOutcome::Succeeded, "{d:?}: {}", rep.detail);
        }
    }

    #[test]
    fn severed_blocked_with_typed_reason_under_fidelius() {
        let (v, rep) = severed_run(Defense::Fidelius);
        assert_eq!(rep.outcome, AttackOutcome::Blocked, "{}", rep.detail);
        assert!(
            rep.detail.contains(DenialReason::RemapPopulatedGpa.as_str()),
            "untyped detail: {}",
            rep.detail
        );
        assert!(v
            .sys
            .plat
            .machine
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::Denial { reason: DenialReason::RemapPopulatedGpa })));
    }

    #[test]
    fn sevurity_injects_predicted_plaintext_on_vanilla_sev() {
        for d in [Defense::VanillaXen, Defense::XenSev, Defense::XenSevEs] {
            let (_v, rep) = sevurity_run(d);
            assert_eq!(rep.outcome, AttackOutcome::Succeeded, "{d:?}: {}", rep.detail);
        }
    }

    #[test]
    fn sevurity_blocked_with_typed_reason_under_fidelius() {
        let (v, rep) = sevurity_run(Defense::Fidelius);
        assert_eq!(rep.outcome, AttackOutcome::Blocked, "{}", rep.detail);
        assert!(
            rep.detail.contains(DenialReason::SealedFrameAccess.as_str()),
            "untyped detail: {}",
            rep.detail
        );
        assert!(v
            .sys
            .plat
            .machine
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::Denial { reason: DenialReason::SealedFrameAccess })));
    }

    #[test]
    fn attestation_rollback_accepted_on_vanilla_sev() {
        for d in [Defense::XenSev, Defense::XenSevEs] {
            let (_s, rep) = rollback_run(d);
            assert_eq!(rep.outcome, AttackOutcome::Succeeded, "{d:?}: {}", rep.detail);
        }
    }

    #[test]
    fn attestation_rollback_blocked_with_typed_reason_under_fidelius() {
        let (s, rep) = rollback_run(Defense::Fidelius);
        assert_eq!(rep.outcome, AttackOutcome::Blocked, "{}", rep.detail);
        assert!(
            rep.detail.contains(DenialReason::LaunchMeasurementReplayed.as_str()),
            "untyped detail: {}",
            rep.detail
        );
        let sys = s.expect("system survives the refused replay");
        assert!(sys.plat.machine.trace.events().iter().any(|e| matches!(
            e.event,
            Event::Denial { reason: DenialReason::LaunchMeasurementReplayed }
        )));
    }

    #[test]
    fn attestation_rollback_not_applicable_without_attestation() {
        let (s, rep) = rollback_run(Defense::VanillaXen);
        assert!(s.is_none());
        assert_eq!(rep.outcome, AttackOutcome::NotApplicable);
    }

    #[test]
    fn successor_attacks_emit_outcome_events() {
        let (v, _rep) = severed_run(Defense::Fidelius);
        assert!(v.sys.plat.machine.trace.events().iter().any(|e| matches!(
            e.event,
            Event::AttackOutcome {
                attack: "severed-io-remap",
                defense: "Fidelius",
                outcome: "blocked",
                reason: Some(DenialReason::RemapPopulatedGpa),
            }
        )));
        let (v, _rep) = severed_run(Defense::XenSev);
        assert!(v.sys.plat.machine.trace.events().iter().any(|e| matches!(
            e.event,
            Event::AttackOutcome {
                attack: "severed-io-remap",
                defense: "Xen+SEV",
                outcome: "VULNERABLE",
                reason: None,
            }
        )));
    }

    #[test]
    fn successor_rows_are_in_the_matrix() {
        let names: Vec<&str> = crate::scenarios::all_attacks().iter().map(|a| a.name).collect();
        for n in ["severed-io-remap", "sevurity-tweak-inject", "attestation-rollback"] {
            assert!(names.contains(&n), "matrix is missing the {n} row");
        }
    }
}
