//! Attack framework for the Fidelius reproduction.
//!
//! Implements the attack surfaces from the paper's §2.2 and §6 as
//! executable scenarios, each run against four defense configurations:
//!
//! | configuration | meaning |
//! |---|---|
//! | `VanillaXen` | plain Xen, no memory encryption |
//! | `XenSev` | SEV guests, hypervisor-managed (the paper's baseline) |
//! | `XenSevEs` | SEV plus simulated SEV-ES (encrypted VMCB/registers) |
//! | `Fidelius` | the full system |
//!
//! Attacks do **not** use the Guardian's polite interfaces — they go
//! straight at the simulated memory system, physical DRAM and SEV command
//! surface, exactly as a compromised hypervisor or physical attacker
//! would. What stops them (or fails to) is the architecture, not the API.
//!
//! [`xsa`] reproduces the paper's quantitative §6.2 analysis of 235 Xen
//! Security Advisories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defense;
pub mod scenarios;
pub mod successors;
pub mod xsa;

pub use defense::{Defense, SevEsSim, VictimSetup};
pub use scenarios::{all_attacks, run_matrix, run_matrix_par, Attack, AttackOutcome, AttackReport};
pub use successors::successor_attacks;
