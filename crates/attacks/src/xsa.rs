//! The quantitative XSA analysis (paper §6.2).
//!
//! The paper classifies 235 Xen Security Advisories: 177 concern the
//! hypervisor (the rest are Qemu-related and out of scope). Of those 177,
//! Fidelius thwarts the 31 (17.5%) privilege-escalation and 22 (12.4%)
//! information-leakage advisories; 14 (7.9%) are flaws inside the guest
//! (out of the threat model) and the remainder are DoS (explicitly not a
//! goal).
//!
//! We reproduce the classification as a structured dataset: each entry
//! carries the advisory number, a category, and how Fidelius relates to
//! it, with the aggregate counts pinned to the paper's.

/// What an advisory's impact class is and whether Fidelius addresses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XsaCategory {
    /// Privilege escalation from a guest into the host — thwarted by
    /// Fidelius's resource-permission revocation.
    PrivilegeEscalationThwarted,
    /// Information leakage of guest data — thwarted by memory encryption
    /// plus Fidelius's isolation.
    InfoLeakThwarted,
    /// A flaw inside the guest itself — out of the threat model.
    GuestInternal,
    /// Denial of service — out of scope (availability is not a goal).
    DenialOfService,
    /// Qemu/device-model advisory — out of scope for a Xen-level defense.
    QemuRelated,
}

impl XsaCategory {
    /// Whether the paper counts this class as thwarted by Fidelius.
    pub fn thwarted(self) -> bool {
        matches!(self, XsaCategory::PrivilegeEscalationThwarted | XsaCategory::InfoLeakThwarted)
    }

    /// Whether the advisory concerns the hypervisor (vs Qemu).
    pub fn hypervisor_related(self) -> bool {
        self != XsaCategory::QemuRelated
    }
}

/// One advisory.
#[derive(Debug, Clone)]
pub struct XsaEntry {
    /// Advisory number (XSA-n).
    pub id: u32,
    /// Classification.
    pub category: XsaCategory,
    /// Short synthesized description.
    pub description: String,
}

/// Paper counts: (privilege escalation, info leak, guest internal, DoS,
/// Qemu) = (31, 22, 14, 110, 58); 31+22+14+110 = 177 hypervisor-related,
/// plus 58 Qemu = 235 total.
pub const COUNT_PRIV_ESC: usize = 31;
/// Information-leak advisories thwarted.
pub const COUNT_INFO_LEAK: usize = 22;
/// Guest-internal advisories.
pub const COUNT_GUEST_INTERNAL: usize = 14;
/// DoS advisories.
pub const COUNT_DOS: usize = 110;
/// Qemu advisories.
pub const COUNT_QEMU: usize = 58;
/// Total advisories analyzed.
pub const COUNT_TOTAL: usize = 235;

/// Builds the 235-entry dataset. Categories are interleaved
/// deterministically across advisory numbers (the exact mapping of ids to
/// categories is synthesized; the aggregate counts are the paper's).
pub fn dataset() -> Vec<XsaEntry> {
    let mut remaining = [
        (XsaCategory::PrivilegeEscalationThwarted, COUNT_PRIV_ESC),
        (XsaCategory::InfoLeakThwarted, COUNT_INFO_LEAK),
        (XsaCategory::GuestInternal, COUNT_GUEST_INTERNAL),
        (XsaCategory::DenialOfService, COUNT_DOS),
        (XsaCategory::QemuRelated, COUNT_QEMU),
    ];
    let describe = |cat: XsaCategory, id: u32| match cat {
        XsaCategory::PrivilegeEscalationThwarted => {
            format!("XSA-{id}: hypervisor memory-management flaw enabling privilege escalation")
        }
        XsaCategory::InfoLeakThwarted => {
            format!("XSA-{id}: hypervisor path leaking guest memory or register state")
        }
        XsaCategory::GuestInternal => {
            format!("XSA-{id}: flaw exploitable only from within the guest")
        }
        XsaCategory::DenialOfService => {
            format!("XSA-{id}: resource exhaustion / crash (denial of service)")
        }
        XsaCategory::QemuRelated => format!("XSA-{id}: Qemu device-model flaw"),
    };
    let mut out = Vec::with_capacity(COUNT_TOTAL);
    // Deal categories round-robin, weighted by their remaining counts, so
    // ids spread across the whole range deterministically.
    let mut id = 1u32;
    while out.len() < COUNT_TOTAL {
        for slot in remaining.iter_mut() {
            if slot.1 > 0 {
                out.push(XsaEntry { id, category: slot.0, description: describe(slot.0, id) });
                slot.1 -= 1;
                id += 1;
                if out.len() == COUNT_TOTAL {
                    break;
                }
            }
        }
    }
    out
}

/// Aggregate results of the analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XsaSummary {
    /// Total advisories.
    pub total: usize,
    /// Hypervisor-related advisories.
    pub hypervisor_related: usize,
    /// Privilege escalations thwarted.
    pub priv_esc_thwarted: usize,
    /// Info leaks thwarted.
    pub info_leak_thwarted: usize,
    /// Guest-internal (out of scope).
    pub guest_internal: usize,
    /// DoS (out of scope).
    pub dos: usize,
    /// Percentage of hypervisor advisories that are thwarted privilege
    /// escalations.
    pub priv_esc_pct: f64,
    /// Percentage of hypervisor advisories that are thwarted info leaks.
    pub info_leak_pct: f64,
}

/// Analyzes a dataset.
pub fn analyze(entries: &[XsaEntry]) -> XsaSummary {
    let total = entries.len();
    let hyp = entries.iter().filter(|e| e.category.hypervisor_related()).count();
    let pe =
        entries.iter().filter(|e| e.category == XsaCategory::PrivilegeEscalationThwarted).count();
    let il = entries.iter().filter(|e| e.category == XsaCategory::InfoLeakThwarted).count();
    let gi = entries.iter().filter(|e| e.category == XsaCategory::GuestInternal).count();
    let dos = entries.iter().filter(|e| e.category == XsaCategory::DenialOfService).count();
    XsaSummary {
        total,
        hypervisor_related: hyp,
        priv_esc_thwarted: pe,
        info_leak_thwarted: il,
        guest_internal: gi,
        dos,
        priv_esc_pct: 100.0 * pe as f64 / hyp as f64,
        info_leak_pct: 100.0 * il as f64 / hyp as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_matches_paper_counts() {
        let data = dataset();
        let s = analyze(&data);
        assert_eq!(s.total, 235);
        assert_eq!(s.hypervisor_related, 177);
        assert_eq!(s.priv_esc_thwarted, 31);
        assert_eq!(s.info_leak_thwarted, 22);
        assert_eq!(s.guest_internal, 14);
        assert_eq!(s.dos, 110);
    }

    #[test]
    fn percentages_match_paper() {
        let s = analyze(&dataset());
        assert!((s.priv_esc_pct - 17.5).abs() < 0.05, "{}", s.priv_esc_pct);
        assert!((s.info_leak_pct - 12.4).abs() < 0.05, "{}", s.info_leak_pct);
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let data = dataset();
        for (i, e) in data.iter().enumerate() {
            assert_eq!(e.id as usize, i + 1);
            assert!(!e.description.is_empty());
        }
    }

    #[test]
    fn thwarted_flag_consistent() {
        assert!(XsaCategory::PrivilegeEscalationThwarted.thwarted());
        assert!(XsaCategory::InfoLeakThwarted.thwarted());
        assert!(!XsaCategory::DenialOfService.thwarted());
        assert!(!XsaCategory::QemuRelated.hypervisor_related());
    }
}
