//! Defense configurations and the victim setup.

use fidelius_core::shadow::{ShadowCtx, Verdict};
use fidelius_core::Fidelius;
use fidelius_hw::vmcb::{ExitCode, VmcbField, VmcbImage};
use fidelius_hw::{Gpa, PAGE_SIZE};
use fidelius_xen::domain::{Domain, DomainId};
use fidelius_xen::frontend::gplayout;
use fidelius_xen::grants::GrantEntry;
use fidelius_xen::guardian::{GuardError, Guardian, IoDir, LateLaunchInfo};
use fidelius_xen::platform::Platform;
use fidelius_xen::system::GuestConfig;
use fidelius_xen::{System, Unprotected, XenError};
use std::any::Any;
use std::collections::HashMap;

/// The four configurations the matrix compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Defense {
    /// Plain Xen, no memory encryption.
    VanillaXen,
    /// SEV guests under an unmodified hypervisor.
    XenSev,
    /// SEV + simulated SEV-ES (VMCB/register encryption).
    XenSevEs,
    /// The full Fidelius system.
    Fidelius,
}

impl Defense {
    /// All four, in presentation order.
    pub const ALL: [Defense; 4] =
        [Defense::VanillaXen, Defense::XenSev, Defense::XenSevEs, Defense::Fidelius];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            Defense::VanillaXen => "Xen",
            Defense::XenSev => "Xen+SEV",
            Defense::XenSevEs => "Xen+SEV-ES",
            Defense::Fidelius => "Fidelius",
        }
    }
}

/// Simulated SEV-ES: shadows the VMCB and registers at the world-switch
/// boundary (as the hardware would encrypt them), but leaves everything
/// else — NPT, grant table, SEV metadata, hypervisor page tables — to the
/// vanilla hypervisor. This isolates which attacks SEV-ES alone stops.
pub struct SevEsSim {
    inner: Unprotected,
    shadows: HashMap<DomainId, ShadowCtx>,
}

impl std::fmt::Debug for SevEsSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SevEsSim").finish_non_exhaustive()
    }
}

impl Default for SevEsSim {
    fn default() -> Self {
        Self::new()
    }
}

impl SevEsSim {
    /// A fresh SEV-ES simulation.
    pub fn new() -> Self {
        SevEsSim { inner: Unprotected::new(), shadows: HashMap::new() }
    }
}

impl Guardian for SevEsSim {
    fn name(&self) -> &'static str {
        "sev-es"
    }

    fn late_launch(
        &mut self,
        plat: &mut Platform,
        info: &LateLaunchInfo,
    ) -> Result<(), GuardError> {
        self.inner.late_launch(plat, info)
    }

    fn host_pt_write(
        &mut self,
        plat: &mut Platform,
        entry_pa: fidelius_hw::Hpa,
        value: u64,
    ) -> Result<(), GuardError> {
        self.inner.host_pt_write(plat, entry_pa, value)
    }

    fn npt_write(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        entry_pa: fidelius_hw::Hpa,
        value: u64,
    ) -> Result<(), GuardError> {
        self.inner.npt_write(plat, dom, entry_pa, value)
    }

    fn grant_write(
        &mut self,
        plat: &mut Platform,
        index: u64,
        entry: GrantEntry,
    ) -> Result<(), GuardError> {
        self.inner.grant_write(plat, index, entry)
    }

    fn pre_sharing(
        &mut self,
        plat: &mut Platform,
        initiator: DomainId,
        target: DomainId,
        gpa_page: u64,
        nframes: u64,
        writable: bool,
    ) -> Result<(), GuardError> {
        self.inner.pre_sharing(plat, initiator, target, gpa_page, nframes, writable)
    }

    fn enter_guest(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError> {
        if let Some(shadow) = self.shadows.remove(&dom.id) {
            let img = VmcbImage::load(&plat.machine.mc, dom.vmcb_pa)?;
            match shadow.verify_and_merge(&img) {
                Verdict::Clean(merged) => {
                    merged.store(&mut plat.machine.mc, dom.vmcb_pa)?;
                    let regs = shadow.merged_gprs(&dom.gpr_save);
                    dom.gpr_save = regs;
                }
                _ => {
                    self.shadows.insert(dom.id, shadow);
                    return Err(GuardError::IntegrityViolation("sev-es: vmcb tampered"));
                }
            }
        }
        // SEV-ES does NOT verify ASID/NCr3 against anything: the
        // hypervisor still manages them — the residual weakness of §2.2.
        self.inner.enter_guest(plat, dom)
    }

    fn on_vmexit(&mut self, plat: &mut Platform, dom: &mut Domain) -> Result<(), GuardError> {
        let img = VmcbImage::load(&plat.machine.mc, dom.vmcb_pa)?;
        if let Some(exit) = ExitCode::from_raw(img.get(VmcbField::ExitCode)) {
            let gprs = plat.machine.cpu.regs.as_array();
            let shadow = ShadowCtx::capture(img, gprs, exit);
            let masked = shadow.masked_vmcb();
            masked.store(&mut plat.machine.mc, dom.vmcb_pa)?;
            let mgprs = shadow.masked_gprs();
            plat.machine.cpu.regs.load_array(mgprs);
            dom.gpr_save = mgprs;
            self.shadows.insert(dom.id, shadow);
        }
        Ok(())
    }

    fn exec_priv(
        &mut self,
        plat: &mut Platform,
        op: fidelius_hw::cpu::PrivOp,
    ) -> Result<(), GuardError> {
        self.inner.exec_priv(plat, op)
    }

    fn io_transform(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
        dir: IoDir,
        src_pa: fidelius_hw::Hpa,
        dst_pa: fidelius_hw::Hpa,
        len: u64,
        stream: u64,
    ) -> Result<(), GuardError> {
        self.inner.io_transform(plat, dom, dir, src_pa, dst_pa, len, stream)
    }

    fn on_domain_created(&mut self, plat: &mut Platform, dom: &Domain) -> Result<(), GuardError> {
        self.inner.on_domain_created(plat, dom)
    }

    fn seal_guest(&mut self, plat: &mut Platform, dom: &Domain) -> Result<(), GuardError> {
        self.inner.seal_guest(plat, dom)
    }

    fn on_domain_destroyed(
        &mut self,
        plat: &mut Platform,
        dom: DomainId,
    ) -> Result<(), GuardError> {
        self.inner.on_domain_destroyed(plat, dom)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The secret the victim guest keeps in its heap page.
pub const SECRET: &[u8; 24] = b"SECRET_PASSWORD_TOKEN_#1";
/// Guest-physical address of the secret.
pub const SECRET_GPA: Gpa = Gpa(gplayout::HEAP_PAGE * PAGE_SIZE);

/// A booted victim system: one guest holding [`SECRET`] in its (encrypted,
/// where applicable) heap page.
pub struct VictimSetup {
    /// The system under the chosen defense.
    pub sys: System,
    /// The victim domain.
    pub victim: DomainId,
    /// Whether the victim's memory is SEV-encrypted.
    pub sev: bool,
}

impl std::fmt::Debug for VictimSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VictimSetup").field("victim", &self.victim).finish_non_exhaustive()
    }
}

/// DRAM used by attack scenarios.
pub const ATTACK_DRAM: u64 = 32 * 1024 * 1024;

/// Builds the victim for a defense configuration.
///
/// # Errors
///
/// Setup failures (should not happen in a healthy build).
pub fn build_victim(defense: Defense) -> Result<VictimSetup, XenError> {
    let mut sys = System::new_with_firmware(
        ATTACK_DRAM,
        0xA77AC4,
        firmware_mode_for(defense),
        guardian_for(defense),
    )?;
    let sev = defense != Defense::VanillaXen;
    let victim = match defense {
        Defense::Fidelius => {
            let mut owner = fidelius_sev::GuestOwner::new(0x0B5E55ED);
            let image = owner.package_image(b"victim kernel", &sys.plat.firmware.pdh_public());
            fidelius_core::lifecycle::boot_encrypted_guest(&mut sys, &image, 256)?
        }
        _ => sys.create_guest(GuestConfig {
            mem_pages: 256,
            sev,
            kernel: b"victim kernel".to_vec(),
        })?,
    };
    sys.gpa_write(victim, SECRET_GPA, SECRET, sev)?;
    sys.ensure_host()?;
    Ok(VictimSetup { sys, victim, sev })
}

/// The guardian a defense configuration runs under.
pub fn guardian_for(defense: Defense) -> Box<dyn Guardian> {
    match defense {
        Defense::VanillaXen | Defense::XenSev => Box::new(Unprotected::new()),
        Defense::XenSevEs => Box::new(SevEsSim::new()),
        Defense::Fidelius => Box::new(Fidelius::new()),
    }
}

/// The SEV firmware build a defense configuration runs on: only the full
/// Fidelius stack ships the retrofitted firmware; every other column is
/// measured against what vanilla SEV actually checks.
pub fn firmware_mode_for(defense: Defense) -> fidelius_sev::FwMode {
    match defense {
        Defense::Fidelius => fidelius_sev::FwMode::Retrofit,
        _ => fidelius_sev::FwMode::Vanilla,
    }
}

/// Scans a byte haystack for the secret.
pub fn contains_secret(haystack: &[u8]) -> bool {
    haystack.windows(SECRET.len()).any(|w| w == SECRET)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_boot_under_all_defenses() {
        for d in Defense::ALL {
            let v = build_victim(d).unwrap_or_else(|e| panic!("{d:?}: {e}"));
            assert_eq!(v.sev, d != Defense::VanillaXen);
        }
    }

    #[test]
    fn secret_is_readable_by_the_victim_itself() {
        for d in Defense::ALL {
            let mut v = build_victim(d).unwrap();
            v.sys.ensure_guest(v.victim).unwrap();
            let mut buf = [0u8; 24];
            v.sys.plat.machine.guest_read_gpa(SECRET_GPA, &mut buf, v.sev).unwrap();
            assert_eq!(&buf, SECRET, "{d:?}");
        }
    }

    #[test]
    fn contains_secret_works() {
        let mut hay = vec![0u8; 100];
        assert!(!contains_secret(&hay));
        hay[40..64].copy_from_slice(SECRET);
        assert!(contains_secret(&hay));
    }
}
