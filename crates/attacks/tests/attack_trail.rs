//! A malicious-hypervisor probe must leave a *typed* forensic trail: the
//! denial shows up in the event ring as a `Decision{allowed: false}`
//! followed by the machine-readable `DenialReason`, and in the metrics
//! registry under the right audit kind — not just as an error string
//! returned to the attacker.

use fidelius_attacks::defense::{build_victim, Defense};
use fidelius_core::audit::AuditKind;
use fidelius_hw::paging::PTE_WRITABLE;
use fidelius_telemetry::{DenialReason, Event, PolicyObject};
use fidelius_xen::frontend::gplayout;

#[test]
fn remap_probe_leaves_typed_denial_trail() {
    let mut v = build_victim(Defense::Fidelius).expect("victim boots");
    let dom = v.victim;

    // The compromised hypervisor tries the §6 remap attack through its own
    // legitimate interface: point the victim's populated heap GPA at a
    // fresh frame of the hypervisor's choosing (after which it could feed
    // the guest stale or attacker-controlled memory).
    let rogue = v.sys.xen.heap.alloc().expect("heap frame");
    let err = v
        .sys
        .xen
        .npt_map(
            &mut v.sys.plat,
            &mut *v.sys.guardian,
            dom,
            gplayout::HEAP_PAGE,
            rogue,
            PTE_WRITABLE,
        )
        .expect_err("Fidelius must refuse remapping a populated GPA");
    let msg = format!("{err:?}");
    assert!(msg.contains(DenialReason::RemapPopulatedGpa.as_str()), "wrong error: {msg}");

    let events = v.sys.plat.machine.trace.events();

    // The typed reason is in the ring…
    let denial_at = events
        .iter()
        .position(|t| matches!(t.event, Event::Denial { reason: DenialReason::RemapPopulatedGpa }))
        .expect("no typed RemapPopulatedGpa denial in the trace");

    // …immediately preceded by the policy decision that produced it, with
    // the probe's operands (the rogue frame, the acting domain).
    let Event::Decision { object, op, operand, dom: decided_for, allowed } =
        events[denial_at - 1].event
    else {
        panic!("denial not preceded by its decision: {:?}", events[denial_at - 1].event);
    };
    assert_eq!(object, PolicyObject::Pit);
    assert_eq!(op, "npt-write");
    assert_eq!(operand, rogue.0);
    assert_eq!(decided_for, dom.0);
    assert!(!allowed);

    // The metrics registry classified it under the PIT audit kind, and the
    // decision counters picked up the denied op.
    let metrics = v.sys.plat.machine.trace.metrics();
    assert!(metrics.denials_by_kind.get(&AuditKind::PitViolation).copied().unwrap_or(0) >= 1);
    assert!(metrics.decisions_denied.get("pit").copied().unwrap_or(0) >= 1);

    // The guest's real mapping survived the probe untouched.
    let still = v.sys.xen.domain(dom).expect("domain").frame_of(gplayout::HEAP_PAGE);
    assert!(still.is_some(), "probe must not disturb the victim's mapping");
    assert_ne!(still.unwrap(), rogue);
}

#[test]
fn replay_probe_is_blocked_without_policy_denial() {
    // The replay attack never reaches a policy check — the PA-tweaked
    // ciphertext is simply useless when moved or restored. The trail here
    // is the crypto traffic itself: the engine events show guest-keyed
    // traffic, and no PIT denial is recorded for the probe.
    let mut v = build_victim(Defense::Fidelius).expect("victim boots");
    let before = v.sys.plat.machine.trace.metrics();
    let frame =
        v.sys.xen.domain(v.victim).expect("domain").frame_of(gplayout::HEAP_PAGE).expect("backed");

    // Snapshot ciphertext, overwrite it in place (same PA, so no tweak
    // mismatch is even needed): the write is refused by write protection.
    let va = fidelius_xen::layout::direct_map(frame);
    let mut snapshot = [0u8; 16];
    v.sys.plat.machine.host_read(va, &mut snapshot).expect_err("private frame unmapped for host");
    let after = v.sys.plat.machine.trace.metrics();
    assert_eq!(
        before.denials_by_kind.get(&AuditKind::PitViolation),
        after.denials_by_kind.get(&AuditKind::PitViolation),
        "a physical-layer block must not masquerade as a policy denial"
    );
}
