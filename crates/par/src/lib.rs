//! Deterministic parallel execution for shared-nothing sweep cases.
//!
//! Every sweep binary in this workspace (the fault matrix, the attack
//! matrix, the figure-5/6 workload sweeps, the multi-scenario throughput
//! drivers) runs many *independent* cases: each case boots its own
//! simulated `System`, owns its own modeled clock and telemetry, and never
//! shares mutable state with its siblings. That makes them trivially
//! parallel — but only if the parallelism cannot change what the sweep
//! *reports*.
//!
//! [`par_map_ordered`] is the one primitive the sweeps build on. It fans
//! case closures out across a bounded pool of scoped worker threads
//! (work-stealing off a single atomic cursor, so long cases do not stall
//! the queue behind them) and collects results **by input index**, not by
//! completion order. Consumers therefore observe exactly the sequence a
//! sequential loop would have produced: JSON artifacts, summary tables,
//! failure lists, repro commands and exit codes are byte-identical at any
//! thread count, which CI enforces by diffing artifacts across thread
//! counts.
//!
//! Determinism contract (the caller's side of the bargain):
//!
//! * `f` must be a pure function of `(index, item)` — no shared mutable
//!   state, no ambient randomness, no wall-clock-dependent output;
//! * anything order-sensitive (printing, aggregation, telemetry merging)
//!   happens *after* the call, iterating the returned `Vec` in order.
//!
//! The crate is dependency-free and uses only `std::thread::scope`, so a
//! panicking case aborts the sweep exactly like it would sequentially
//! (the panic is propagated, not swallowed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count for sweep binaries: the parallelism the host
/// advertises, clamped to at least 1. (`--threads N` overrides it.)
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning the
/// results **in input order** regardless of completion order.
///
/// `threads` is clamped to `[1, items.len()]`; with one worker (or one
/// item) the closure runs inline on the caller's thread, so a
/// `--threads 1` run is *literally* the sequential loop, not a
/// single-worker simulation of it.
///
/// Scheduling is dynamic (workers pull the next unclaimed index off an
/// atomic cursor), so heterogeneous case costs balance automatically;
/// scheduling order can never leak into the output because every result
/// lands in its input slot.
///
/// # Panics
///
/// Propagates the first worker panic after all workers have stopped
/// (`std::thread::scope` joins before unwinding), same observable effect
/// as the sequential loop panicking on that case.
pub fn par_map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(i, item);
                    *slots[i].lock().expect("result slot") = Some(result);
                })
            })
            .collect();
        // Join explicitly so a case panic surfaces with its original
        // payload (what the sequential loop would have shown), not the
        // scope's generic "a scoped thread panicked".
        let mut first_panic = None;
        for worker in workers {
            if let Err(payload) = worker.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot").expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let seq = par_map_ordered(&items, 1, |i, &x| (i, x * x));
        for threads in [2, 3, 8, 64] {
            let par = par_map_ordered(&items, threads, |i, &x| (i, x * x));
            assert_eq!(par, seq, "threads={threads}");
        }
        assert_eq!(seq[13], (13, 169));
    }

    #[test]
    fn handles_empty_and_oversized_thread_counts() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_ordered(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map_ordered(&[7u8], 0, |_, &x| x + 1), vec![8]);
        assert_eq!(par_map_ordered(&[1u8, 2], 1000, |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn uneven_case_costs_still_land_in_input_slots() {
        // Early indices do the most work, so completion order is roughly
        // reversed — the output order must not be.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_ordered(&items, 4, |_, &x| {
            let spin = (32 - x) * 1000;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        par_map_ordered(&(0..50usize).collect::<Vec<_>>(), 6, |i, _| {
            calls[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "case 3 exploded")]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..8).collect();
        par_map_ordered(&items, 4, |i, _| {
            if i == 3 {
                panic!("case 3 exploded");
            }
            i
        });
    }
}
